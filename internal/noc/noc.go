// Package noc models the packet-switched network of §4.2 that carries
// logical instructions from the master controller to the MCE array (and
// syndrome records back). The master sits at the root of a 2-D mesh of MCE
// tiles; packets are routed dimension-ordered (X then Y), each hop costs one
// network cycle, and each link carries one packet per cycle per direction.
// Delivery is therefore *non-deterministic in latency* — exactly the
// property QuEST buys by decoupling QECC (which never rides this network)
// from logical traffic (which tolerates queuing).
//
// The model is cycle-stepped and deterministic given an arrival order, so
// machine simulations remain reproducible.
package noc

import (
	"fmt"
	"sort"

	"quest/internal/tracing"
)

// Packet is one routed message.
type Packet struct {
	Dst     int // tile index
	Payload [2]byte
	// injected is the cycle the packet entered the network.
	injected int
}

// Mesh is the network: a W×H grid of tile routers plus the master's root
// injection point at tile 0's router.
type Mesh struct {
	W, H int
	// links[from][dir] holds the packet in flight on that link this cycle.
	// dir: 0=+x 1=-x 2=+y 3=-y 4=eject (into the tile).
	inFlight map[linkKey][]Packet
	// queues at each router awaiting their next hop, FIFO.
	routerQ [][]Packet
	// delivered packets per tile.
	delivered [][]Packet

	cycle      int
	injectedN  uint64
	deliveredN uint64
	latencySum uint64
	maxLatency int
	// LinkCapacity is packets per link per cycle (1 models a serial link).
	LinkCapacity int

	tr *tracing.Tracer
}

type linkKey struct {
	router int
	dir    int
}

// NewMesh builds a W×H mesh (tiles indexed row-major).
func NewMesh(w, h int) *Mesh {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("noc: invalid mesh %dx%d", w, h))
	}
	m := &Mesh{
		W: w, H: h,
		inFlight:     make(map[linkKey][]Packet),
		routerQ:      make([][]Packet, w*h),
		delivered:    make([][]Packet, w*h),
		LinkCapacity: 1,
	}
	return m
}

// SetTracer binds a tracer; each ejected packet then emits a noc-track span
// covering injection→delivery at its destination router. Nil disables it.
func (m *Mesh) SetTracer(tr *tracing.Tracer) { m.tr = tr }

// Tiles returns the tile count.
func (m *Mesh) Tiles() int { return m.W * m.H }

// Inject enqueues a packet at the root router (tile 0, where the master's
// uplink lands).
func (m *Mesh) Inject(p Packet) error {
	if p.Dst < 0 || p.Dst >= m.Tiles() {
		return fmt.Errorf("noc: destination %d outside %d-tile mesh", p.Dst, m.Tiles())
	}
	p.injected = m.cycle
	m.routerQ[0] = append(m.routerQ[0], p)
	m.injectedN++
	return nil
}

// nextHop computes the dimension-ordered route: X first, then Y, then eject.
func (m *Mesh) nextHop(router, dst int) (next int, dir int) {
	rx, ry := router%m.W, router/m.W
	dx, dy := dst%m.W, dst/m.W
	switch {
	case dx > rx:
		return router + 1, 0
	case dx < rx:
		return router - 1, 1
	case dy > ry:
		return router + m.W, 2
	case dy < ry:
		return router - m.W, 3
	default:
		return router, 4
	}
}

// Step advances the network one cycle and returns packets delivered this
// cycle, indexed by tile.
//
// The in-flight links are visited in sorted (router, dir) order, never map
// order: link visitation decides the append order into each router queue,
// and the FIFO arbiter under LinkCapacity then decides which packet wins a
// contended link this cycle. Randomized map iteration here made delivery
// cycles — and with them trace spans and latency stats — vary between runs
// of the same (config, seed); TestStepDeterministicUnderCrossTraffic pins
// the fix.
func (m *Mesh) Step() [][]Packet {
	out := make([][]Packet, m.Tiles())
	// 1. Land in-flight packets at their next router (or eject).
	next := make(map[linkKey][]Packet)
	keys := make([]linkKey, 0, len(m.inFlight))
	for k := range m.inFlight {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].router != keys[j].router {
			return keys[i].router < keys[j].router
		}
		return keys[i].dir < keys[j].dir
	})
	for _, k := range keys {
		for _, p := range m.inFlight[k] {
			if k.dir == 4 {
				lat := m.cycle - p.injected
				m.deliveredN++
				m.latencySum += uint64(lat)
				if lat > m.maxLatency {
					m.maxLatency = lat
				}
				m.delivered[k.router] = append(m.delivered[k.router], p)
				out[k.router] = append(out[k.router], p)
				if m.tr != nil {
					dur := int64(lat)
					if dur < 1 {
						dur = 1
					}
					m.tr.SpanArg("noc", k.router, "pkt", int64(p.injected), dur, "lat", int64(lat))
				}
				continue
			}
			dest := neighborOf(k.router, k.dir, m.W)
			m.routerQ[dest] = append(m.routerQ[dest], p)
		}
	}
	m.inFlight = next
	// 2. Arbitrate: each router forwards up to LinkCapacity packets per
	// outgoing link, FIFO order.
	for r := range m.routerQ {
		q := m.routerQ[r]
		if len(q) == 0 {
			continue
		}
		used := map[int]int{}
		var stay []Packet
		for _, p := range q {
			_, dir := m.nextHop(r, p.Dst)
			if used[dir] >= m.LinkCapacity {
				stay = append(stay, p)
				continue
			}
			used[dir]++
			key := linkKey{router: r, dir: dir}
			m.inFlight[key] = append(m.inFlight[key], p)
		}
		m.routerQ[r] = stay
	}
	m.cycle++
	return out
}

func neighborOf(router, dir, w int) int {
	switch dir {
	case 0:
		return router + 1
	case 1:
		return router - 1
	case 2:
		return router + w
	default:
		return router - w
	}
}

// Drain steps until the network empties (or maxCycles), returning deliveries
// in order, indexed by tile.
func (m *Mesh) Drain(maxCycles int) ([][]Packet, bool) {
	all := make([][]Packet, m.Tiles())
	for c := 0; c < maxCycles; c++ {
		for tile, pkts := range m.Step() {
			all[tile] = append(all[tile], pkts...)
		}
		if m.Pending() == 0 {
			return all, true
		}
	}
	return all, false
}

// Pending returns packets still in queues or on links.
func (m *Mesh) Pending() int {
	n := 0
	for _, q := range m.routerQ {
		n += len(q)
	}
	for _, pkts := range m.inFlight { //quest:allow(detrange) summing lengths is order-independent; no order escapes
		n += len(pkts)
	}
	return n
}

// Stats returns cumulative (injected, delivered, mean latency, max latency).
func (m *Mesh) Stats() (injected, delivered uint64, meanLatency float64, maxLatency int) {
	mean := 0.0
	if m.deliveredN > 0 {
		mean = float64(m.latencySum) / float64(m.deliveredN)
	}
	return m.injectedN, m.deliveredN, mean, m.maxLatency
}

// HopDistance returns the dimension-ordered hop count from the root to a
// tile (plus one ejection hop) — the zero-load latency.
func (m *Mesh) HopDistance(dst int) int {
	x, y := dst%m.W, dst/m.W
	return x + y + 1
}
