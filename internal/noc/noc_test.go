package noc

import (
	"testing"
	"testing/quick"
)

func TestZeroLoadLatencyEqualsHopDistance(t *testing.T) {
	m := NewMesh(4, 4)
	for dst := 0; dst < m.Tiles(); dst++ {
		mesh := NewMesh(4, 4)
		if err := mesh.Inject(Packet{Dst: dst}); err != nil {
			t.Fatal(err)
		}
		all, ok := mesh.Drain(100)
		if !ok {
			t.Fatalf("dst %d: did not drain", dst)
		}
		if len(all[dst]) != 1 {
			t.Fatalf("dst %d: delivered %d packets", dst, len(all[dst]))
		}
		_, _, mean, max := mesh.Stats()
		want := float64(mesh.HopDistance(dst))
		if mean != want || max != int(want) {
			t.Errorf("dst %d: latency %.0f/%d, want %v", dst, mean, max, want)
		}
	}
	_ = m
}

func TestContentionQueuesPackets(t *testing.T) {
	// 10 packets to the same far corner share links: latency must spread.
	m := NewMesh(4, 4)
	corner := m.Tiles() - 1
	for i := 0; i < 10; i++ {
		if err := m.Inject(Packet{Dst: corner, Payload: [2]byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	all, ok := m.Drain(200)
	if !ok {
		t.Fatal("did not drain")
	}
	if len(all[corner]) != 10 {
		t.Fatalf("delivered %d", len(all[corner]))
	}
	_, _, mean, max := m.Stats()
	zeroLoad := float64(m.HopDistance(corner))
	if mean <= zeroLoad {
		t.Errorf("mean latency %.1f not above zero-load %v under contention", mean, zeroLoad)
	}
	if max < int(zeroLoad)+9 {
		t.Errorf("max latency %d too small for 10-deep serialization", max)
	}
	// FIFO: payload order preserved to a single destination.
	for i, p := range all[corner] {
		if int(p.Payload[0]) != i {
			t.Errorf("delivery %d carried payload %d — order broken", i, p.Payload[0])
		}
	}
}

func TestDisjointPathsDontContend(t *testing.T) {
	// Packets to different first-hop directions proceed in parallel.
	m := NewMesh(3, 3)
	if err := m.Inject(Packet{Dst: 1}); err != nil { // +x
		t.Fatal(err)
	}
	if err := m.Inject(Packet{Dst: 3}); err != nil { // +y
		t.Fatal(err)
	}
	_, ok := m.Drain(10)
	if !ok {
		t.Fatal("did not drain")
	}
	_, _, _, max := m.Stats()
	if max != 2 {
		t.Errorf("max latency %d, want 2 (no contention on disjoint links)", max)
	}
}

func TestInjectValidation(t *testing.T) {
	m := NewMesh(2, 2)
	if err := m.Inject(Packet{Dst: 9}); err == nil {
		t.Error("out-of-mesh destination accepted")
	}
	if err := m.Inject(Packet{Dst: -1}); err == nil {
		t.Error("negative destination accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid mesh accepted")
		}
	}()
	NewMesh(0, 3)
}

// TestPropertyConservation: every injected packet is delivered exactly once
// to its destination, for random traffic patterns.
func TestPropertyConservation(t *testing.T) {
	f := func(dsts []uint8, wRaw, hRaw uint8) bool {
		w := 1 + int(wRaw)%5
		h := 1 + int(hRaw)%5
		m := NewMesh(w, h)
		want := map[int]int{}
		if len(dsts) > 50 {
			dsts = dsts[:50]
		}
		for i, d := range dsts {
			dst := int(d) % m.Tiles()
			if err := m.Inject(Packet{Dst: dst, Payload: [2]byte{byte(i), byte(i >> 8)}}); err != nil {
				return false
			}
			want[dst]++
		}
		all, ok := m.Drain(10_000)
		if !ok {
			return false
		}
		for dst, n := range want {
			if len(all[dst]) != n {
				return false
			}
		}
		injected, delivered, _, _ := m.Stats()
		return injected == delivered && m.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestLatencyIsNonDeterministicButBounded: the property the paper's
// determinism argument hinges on — logical delivery latency varies with
// load, which is precisely why QECC cannot ride this network.
func TestLatencyIsNonDeterministicButBounded(t *testing.T) {
	light := NewMesh(4, 4)
	light.Inject(Packet{Dst: 15})
	light.Drain(100)
	_, _, lightMean, _ := light.Stats()

	heavy := NewMesh(4, 4)
	for i := 0; i < 40; i++ {
		heavy.Inject(Packet{Dst: 15})
	}
	heavy.Drain(1000)
	_, _, heavyMean, heavyMax := heavy.Stats()

	if heavyMean <= lightMean {
		t.Errorf("load did not increase latency: %.1f vs %.1f", heavyMean, lightMean)
	}
	// But bounded: serialization of 40 packets over one ejection link.
	if heavyMax > light.HopDistance(15)+40 {
		t.Errorf("max latency %d exceeds serialization bound", heavyMax)
	}
}

func TestDegenerateMeshShapes(t *testing.T) {
	// 1×N and N×1 meshes route purely in one dimension.
	for _, dims := range [][2]int{{1, 5}, {5, 1}, {1, 1}} {
		m := NewMesh(dims[0], dims[1])
		for d := 0; d < m.Tiles(); d++ {
			if err := m.Inject(Packet{Dst: d}); err != nil {
				t.Fatal(err)
			}
		}
		all, ok := m.Drain(100)
		if !ok {
			t.Fatalf("%v: did not drain", dims)
		}
		total := 0
		for _, pkts := range all {
			total += len(pkts)
		}
		if total != m.Tiles() {
			t.Errorf("%v: delivered %d of %d", dims, total, m.Tiles())
		}
	}
}

func TestLinkCapacityWidensThroughput(t *testing.T) {
	run := func(capacity int) int {
		m := NewMesh(4, 1)
		m.LinkCapacity = capacity
		for i := 0; i < 16; i++ {
			m.Inject(Packet{Dst: 3})
		}
		_, ok := m.Drain(200)
		if !ok {
			t.Fatal("did not drain")
		}
		_, _, _, max := m.Stats()
		return max
	}
	narrow := run(1)
	wide := run(4)
	if wide >= narrow {
		t.Errorf("4-wide links max latency %d not below serial %d", wide, narrow)
	}
}

// TestStepDeterministicUnderCrossTraffic pins the inFlight-iteration fix in
// Step: with several links in flight at once, link visitation order decides
// the append order into contended router queues, and the FIFO arbiter under
// LinkCapacity=1 then decides which packet wins each cycle. The pre-fix code
// ranged the inFlight map directly, so two identical meshes fed identical
// traffic could deliver in different cycles (different latency stats, trace
// spans, payload interleavings).
func TestStepDeterministicUnderCrossTraffic(t *testing.T) {
	type delivery struct {
		cycle, tile int
		payload     [2]byte
	}
	run := func() ([]delivery, float64, int) {
		m := NewMesh(4, 4)
		var got []delivery
		cycle := 0
		step := func() {
			for tile, pkts := range m.Step() {
				for _, p := range pkts {
					got = append(got, delivery{cycle, tile, p.Payload})
				}
			}
			cycle++
		}
		// Cross-traffic: bursts toward every corner plus a column sweep, with
		// steps interleaved so many links are simultaneously in flight.
		for wave := 0; wave < 4; wave++ {
			for i, dst := range []int{15, 12, 3, 7, 13, 5, 10, 15, 15} {
				if err := m.Inject(Packet{Dst: dst, Payload: [2]byte{byte(wave), byte(i)}}); err != nil {
					t.Fatal(err)
				}
			}
			step()
			step()
		}
		for m.Pending() > 0 && cycle < 500 {
			step()
		}
		if m.Pending() > 0 {
			t.Fatal("mesh did not drain")
		}
		_, _, mean, max := m.Stats()
		return got, mean, max
	}
	first, mean0, max0 := run()
	for i := 1; i < 10; i++ {
		got, mean, max := run()
		if mean != mean0 || max != max0 {
			t.Fatalf("run %d: latency stats %v/%v, want %v/%v", i, mean, max, mean0, max0)
		}
		if len(got) != len(first) {
			t.Fatalf("run %d: %d deliveries, want %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d: delivery %d = %+v, want %+v", i, j, got[j], first[j])
			}
		}
	}
}
