package noise

import (
	"math/rand"

	"quest/internal/clifford"
)

// Replayer reproduces an Injector's fault stream without a tableau. Each
// method performs exactly the RNG draws of the corresponding Injector
// channel — same comparisons, same Intn ranges, same order — and reports the
// sampled fault instead of applying it, so a batched Monte-Carlo engine can
// replay the scalar engine's per-trial fault sequence bit-for-bit while
// propagating the faults through a precomputed Pauli frame.
//
// Determinism contract: calling Replayer methods in the order an
// ExecutionUnit's Fire loop would call the Injector (ascending qubit per
// word, two-qubit draws at the control) yields the identical fault pattern
// for the identical seed. TestReplayerMatchesInjector pins this.
type Replayer struct {
	model Model
	src   rand.Source
	rng   *rand.Rand
}

// NewReplayer returns a replayer using the given model and seed — the same
// (model, seed) pair handed to NewInjector names the same fault stream.
func NewReplayer(m Model, seed int64) *Replayer {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	src := rand.NewSource(seed)
	return &Replayer{model: m, src: src, rng: rand.New(src)}
}

// Reset rebinds the replayer to a model and rewinds it onto a fresh stream,
// reusing the underlying source (Source.Seed reinitializes it to exactly the
// state a fresh NewSource(seed) would have) so pooled scratch pays no
// per-trial RNG allocation.
func (r *Replayer) Reset(m Model, seed int64) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	r.model = m
	r.src.Seed(seed)
}

// Idle samples the idle/decoherence channel. ok reports whether a fault
// occurred; p is the sampled Pauli.
func (r *Replayer) Idle() (p clifford.Pauli, ok bool) {
	if r.rng.Float64() < r.model.Idle {
		return clifford.Pauli(1 + r.rng.Intn(3)), true
	}
	return clifford.PauliI, false
}

// AfterGate1 samples the one-qubit gate error channel.
func (r *Replayer) AfterGate1() (p clifford.Pauli, ok bool) {
	if r.rng.Float64() < r.model.Gate1 {
		return clifford.Pauli(1 + r.rng.Intn(3)), true
	}
	return clifford.PauliI, false
}

// AfterGate2 samples the two-qubit depolarizing channel: pa lands on the
// control, pb on the target. Either may be PauliI (but not both).
func (r *Replayer) AfterGate2() (pa, pb clifford.Pauli, ok bool) {
	if r.rng.Float64() >= r.model.Gate2 {
		return clifford.PauliI, clifford.PauliI, false
	}
	k := 1 + r.rng.Intn(15) // 4*pa+pb, excluding (I,I)
	return clifford.Pauli(k >> 2), clifford.Pauli(k & 3), true
}

// AfterPrep samples the preparation error channel: a Z flips |+>, an X
// flips |0>.
func (r *Replayer) AfterPrep(basisX bool) (p clifford.Pauli, ok bool) {
	if r.rng.Float64() >= r.model.Prep {
		return clifford.PauliI, false
	}
	if basisX {
		return clifford.PauliZ, true
	}
	return clifford.PauliX, true
}

// FlipMeasurement samples the classical measurement-flip channel.
func (r *Replayer) FlipMeasurement() bool {
	return r.rng.Float64() < r.model.Meas
}
