package noise

import (
	"math/rand"
	"testing"

	"quest/internal/clifford"
)

// TestReplayerMatchesInjector pins the Replayer's determinism contract: fed
// the same (model, seed) and the same channel-call sequence as an Injector,
// it reports exactly the faults the Injector injects — same sites, same
// Paulis, same measurement flips — across a long mixed sequence that
// exercises every channel. A single extra or missing RNG draw anywhere
// desynchronizes the streams, so this is also a draw-order test.
func TestReplayerMatchesInjector(t *testing.T) {
	const n = 12
	m := Model{Idle: 0.3, Gate1: 0.25, Gate2: 0.35, Prep: 0.2, Meas: 0.3}
	const seed = 424242

	inj := NewInjector(m, seed)
	rep := NewReplayer(m, seed)
	tb := clifford.New(n, rand.New(rand.NewSource(99)))

	type fault struct {
		q int
		p clifford.Pauli
	}
	var want, got []fault

	// A deterministic mixed site sequence: the site kind and qubits vary
	// with the step index so every channel interleaves with every other.
	for step := 0; step < 2000; step++ {
		q := step % n
		switch step % 5 {
		case 0:
			before := len(inj.Log())
			inj.Idle(tb, q)
			for _, f := range inj.Log()[before:] {
				want = append(want, fault{f.Qubit, f.Pauli})
			}
			if p, ok := rep.Idle(); ok {
				got = append(got, fault{q, p})
			}
		case 1:
			before := len(inj.Log())
			inj.AfterGate1(tb, q)
			for _, f := range inj.Log()[before:] {
				want = append(want, fault{f.Qubit, f.Pauli})
			}
			if p, ok := rep.AfterGate1(); ok {
				got = append(got, fault{q, p})
			}
		case 2:
			b := (q + 1) % n
			before := len(inj.Log())
			inj.AfterGate2(tb, q, b)
			for _, f := range inj.Log()[before:] {
				want = append(want, fault{f.Qubit, f.Pauli})
			}
			if pa, pb, ok := rep.AfterGate2(); ok {
				if pa != clifford.PauliI {
					got = append(got, fault{q, pa})
				}
				if pb != clifford.PauliI {
					got = append(got, fault{b, pb})
				}
			}
		case 3:
			basisX := step%2 == 0
			before := len(inj.Log())
			inj.AfterPrep(tb, q, basisX)
			for _, f := range inj.Log()[before:] {
				want = append(want, fault{f.Qubit, f.Pauli})
			}
			if p, ok := rep.AfterPrep(basisX); ok {
				got = append(got, fault{q, p})
			}
		case 4:
			// The injector logs measurement flips with Pauli I.
			if inj.FlipMeasurement(q) {
				want = append(want, fault{q, clifford.PauliI})
			}
			if rep.FlipMeasurement() {
				got = append(got, fault{q, clifford.PauliI})
			}
		}
	}

	if len(want) == 0 {
		t.Fatal("the sequence injected no faults; the test exercises nothing")
	}
	if len(got) != len(want) {
		t.Fatalf("replayer reported %d faults, injector injected %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fault %d: replayer %+v, injector %+v", i, got[i], want[i])
		}
	}
}

// TestReplayerResetRewindsStream pins the pooled-scratch contract: Reset to
// the same seed replays the identical stream, Reset to a different seed
// diverges, and a Reset replayer is indistinguishable from a fresh one.
func TestReplayerResetRewindsStream(t *testing.T) {
	m := Uniform(0.3)
	drawAll := func(r *Replayer, n int) []float64 {
		var out []float64
		for i := 0; i < n; i++ {
			p, ok := r.Idle()
			v := float64(p)
			if ok {
				v += 10
			}
			out = append(out, v)
		}
		return out
	}
	fresh := drawAll(NewReplayer(m, 7), 200)
	r := NewReplayer(m, 99)
	drawAll(r, 123) // consume an arbitrary prefix
	r.Reset(m, 7)
	reset := drawAll(r, 200)
	for i := range fresh {
		if fresh[i] != reset[i] {
			t.Fatalf("draw %d: fresh %v, reset %v", i, fresh[i], reset[i])
		}
	}
	r.Reset(m, 8)
	other := drawAll(r, 200)
	same := true
	for i := range fresh {
		if fresh[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("streams for seeds 7 and 8 are identical; Reset did not reseed")
	}
}
