// Package noise models the error processes of a superconducting quantum
// substrate: per-sub-cycle decoherence on idle qubits, gate infidelity on
// operated qubits, and classical measurement flips. Errors are Pauli-twirled
// (the standard approximation under which stabilizer simulation of QECC is
// exact), so each fault is an X, Y or Z applied at a circuit location.
//
// All randomness flows through an explicit seeded source so that entire
// machine simulations are reproducible: the same seed yields the same fault
// pattern, syndrome stream and decoder workload.
package noise

import (
	"fmt"
	"math/rand"

	"quest/internal/clifford"
)

// Model holds the per-location fault probabilities. The paper assumes a
// physical error rate of 1e-4 per QECC cycle location for its headline
// numbers and sweeps 1e-3..1e-5 in Figure 15; the same knobs appear here.
type Model struct {
	// Idle is the probability of a depolarizing fault on a qubit that
	// receives an Idle µop for one sub-cycle (decoherence).
	Idle float64
	// Gate1 is the depolarizing fault probability after a one-qubit gate.
	Gate1 float64
	// Gate2 is the two-qubit depolarizing fault probability after a CNOT/CZ;
	// each fault picks one of the 15 non-identity two-qubit Paulis.
	Gate2 float64
	// Meas is the probability that a measurement outcome bit is reported
	// flipped (the projected state is still the reported one's complement).
	Meas float64
	// Prep is the probability that a preparation leaves the orthogonal state.
	Prep float64
}

// Uniform returns a model in which every location fails with probability p,
// the convention the paper uses when quoting a single "error rate".
func Uniform(p float64) Model {
	return Model{Idle: p, Gate1: p, Gate2: p, Meas: p, Prep: p}
}

// Validate checks all probabilities are in [0,1].
func (m Model) Validate() error {
	for _, f := range []struct {
		name string
		p    float64
	}{{"Idle", m.Idle}, {"Gate1", m.Gate1}, {"Gate2", m.Gate2}, {"Meas", m.Meas}, {"Prep", m.Prep}} {
		if f.p < 0 || f.p > 1 {
			return fmt.Errorf("noise: %s probability %v outside [0,1]", f.name, f.p)
		}
	}
	return nil
}

// Fault records a single injected Pauli error, for test introspection and
// decoder ground-truthing.
type Fault struct {
	Cycle    int
	SubCycle int
	Qubit    int
	Pauli    clifford.Pauli
}

// Injector draws faults from a Model and applies them to a tableau, keeping a
// log of every injected fault. The zero value is unusable; construct with
// NewInjector.
type Injector struct {
	model Model
	rng   *rand.Rand
	log   []Fault

	cycle, subCycle int
}

// NewInjector returns an injector using the given model and seed.
func NewInjector(m Model, seed int64) *Injector {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &Injector{model: m, rng: rand.New(rand.NewSource(seed))}
}

// Model returns the injector's noise model.
func (in *Injector) Model() Model { return in.model }

// SetLocation updates the (cycle, sub-cycle) stamp recorded on faults.
func (in *Injector) SetLocation(cycle, subCycle int) {
	in.cycle, in.subCycle = cycle, subCycle
}

// Log returns the injected fault log in injection order.
func (in *Injector) Log() []Fault { return in.log }

// ClearLog discards the fault log (the injector state is otherwise kept).
func (in *Injector) ClearLog() { in.log = in.log[:0] }

func (in *Injector) randomPauli() clifford.Pauli {
	return clifford.Pauli(1 + in.rng.Intn(3))
}

func (in *Injector) inject(t *clifford.Tableau, q int, p clifford.Pauli) {
	t.ApplyPauli(q, p)
	in.log = append(in.log, Fault{Cycle: in.cycle, SubCycle: in.subCycle, Qubit: q, Pauli: p})
}

// Idle applies the idle/decoherence channel to qubit q.
func (in *Injector) Idle(t *clifford.Tableau, q int) {
	if in.rng.Float64() < in.model.Idle {
		in.inject(t, q, in.randomPauli())
	}
}

// AfterGate1 applies the one-qubit gate error channel to qubit q.
func (in *Injector) AfterGate1(t *clifford.Tableau, q int) {
	if in.rng.Float64() < in.model.Gate1 {
		in.inject(t, q, in.randomPauli())
	}
}

// AfterGate2 applies the two-qubit gate error channel to qubits a and b,
// choosing uniformly among the 15 non-identity two-qubit Paulis.
func (in *Injector) AfterGate2(t *clifford.Tableau, a, b int) {
	if in.rng.Float64() >= in.model.Gate2 {
		return
	}
	k := 1 + in.rng.Intn(15) // 4*pa+pb, excluding (I,I)
	pa, pb := clifford.Pauli(k>>2), clifford.Pauli(k&3)
	if pa != clifford.PauliI {
		in.inject(t, a, pa)
	}
	if pb != clifford.PauliI {
		in.inject(t, b, pb)
	}
}

// AfterPrep applies the preparation error channel: with probability Prep the
// prepared qubit is flipped to the orthogonal state. basisX selects which
// Pauli flips it (Z flips |+>, X flips |0>).
func (in *Injector) AfterPrep(t *clifford.Tableau, q int, basisX bool) {
	if in.rng.Float64() >= in.model.Prep {
		return
	}
	if basisX {
		in.inject(t, q, clifford.PauliZ)
	} else {
		in.inject(t, q, clifford.PauliX)
	}
}

// FlipMeasurement reports whether a measurement outcome should be classically
// flipped. Measurement flips are recorded in the log with Pauli I to keep the
// ground truth complete without disturbing the tableau.
func (in *Injector) FlipMeasurement(q int) bool {
	if in.rng.Float64() < in.model.Meas {
		in.log = append(in.log, Fault{Cycle: in.cycle, SubCycle: in.subCycle, Qubit: q, Pauli: clifford.PauliI})
		return true
	}
	return false
}
