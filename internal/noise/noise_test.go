package noise

import (
	"math"
	"math/rand"
	"testing"

	"quest/internal/clifford"
)

func TestUniformModel(t *testing.T) {
	m := Uniform(1e-3)
	if m.Idle != 1e-3 || m.Gate1 != 1e-3 || m.Gate2 != 1e-3 || m.Meas != 1e-3 || m.Prep != 1e-3 {
		t.Errorf("Uniform did not fill all fields: %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestValidateRejectsBadProbabilities(t *testing.T) {
	bad := []Model{
		{Idle: -0.1}, {Gate1: 1.5}, {Gate2: 2}, {Meas: -1}, {Prep: 1.0001},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted: %+v", i, m)
		}
	}
	expectPanic := func() {
		defer func() {
			if recover() == nil {
				t.Error("NewInjector accepted invalid model")
			}
		}()
		NewInjector(Model{Idle: -1}, 1)
	}
	expectPanic()
}

func TestZeroNoiseInjectsNothing(t *testing.T) {
	in := NewInjector(Uniform(0), 1)
	tb := clifford.New(4, rand.New(rand.NewSource(1)))
	for i := 0; i < 1000; i++ {
		in.Idle(tb, i%4)
		in.AfterGate1(tb, i%4)
		in.AfterGate2(tb, 0, 1)
		in.AfterPrep(tb, 2, i%2 == 0)
		if in.FlipMeasurement(3) {
			t.Fatal("measurement flipped at zero noise")
		}
	}
	if len(in.Log()) != 0 {
		t.Fatalf("zero-noise injector logged %d faults", len(in.Log()))
	}
	for q := 0; q < 4; q++ {
		if tb.ExpectationZ(q) != 1 {
			t.Fatalf("zero-noise run disturbed qubit %d", q)
		}
	}
}

func TestCertainNoiseAlwaysInjects(t *testing.T) {
	in := NewInjector(Uniform(1), 1)
	tb := clifford.New(2, rand.New(rand.NewSource(1)))
	in.Idle(tb, 0)
	in.AfterGate1(tb, 1)
	if !in.FlipMeasurement(0) {
		t.Error("certain measurement noise did not flip")
	}
	if len(in.Log()) != 3 {
		t.Errorf("log has %d entries, want 3", len(in.Log()))
	}
}

func TestInjectionRateMatchesModel(t *testing.T) {
	const p = 0.1
	const trials = 20000
	in := NewInjector(Uniform(p), 7)
	tb := clifford.New(1, rand.New(rand.NewSource(1)))
	for i := 0; i < trials; i++ {
		in.Idle(tb, 0)
	}
	rate := float64(len(in.Log())) / trials
	if math.Abs(rate-p) > 0.01 {
		t.Errorf("observed idle fault rate %.4f, want ≈ %.2f", rate, p)
	}
}

func TestTwoQubitFaultsCoverBothQubits(t *testing.T) {
	in := NewInjector(Model{Gate2: 1}, 3)
	tb := clifford.New(2, rand.New(rand.NewSource(1)))
	seenA, seenB := false, false
	for i := 0; i < 500; i++ {
		in.ClearLog()
		in.AfterGate2(tb, 0, 1)
		for _, f := range in.Log() {
			if f.Pauli == clifford.PauliI {
				t.Fatal("two-qubit fault logged identity Pauli")
			}
			switch f.Qubit {
			case 0:
				seenA = true
			case 1:
				seenB = true
			default:
				t.Fatalf("fault on unexpected qubit %d", f.Qubit)
			}
		}
		if len(in.Log()) == 0 {
			t.Fatal("certain two-qubit noise injected nothing")
		}
	}
	if !seenA || !seenB {
		t.Errorf("fault coverage: qubit0=%v qubit1=%v, want both", seenA, seenB)
	}
}

func TestPrepErrorBasis(t *testing.T) {
	// Z-basis prep error is an X flip; X-basis prep error is a Z flip.
	in := NewInjector(Model{Prep: 1}, 5)
	tb := clifford.New(2, rand.New(rand.NewSource(1)))
	in.AfterPrep(tb, 0, false)
	if out := tb.MeasureZ(0); out != 1 {
		t.Error("Z-basis prep error did not flip |0>")
	}
	tb.H(1) // |+>
	in.AfterPrep(tb, 1, true)
	if out := tb.MeasureX(1); out != 1 {
		t.Error("X-basis prep error did not flip |+>")
	}
}

func TestFaultLocationsStamped(t *testing.T) {
	in := NewInjector(Uniform(1), 9)
	tb := clifford.New(1, rand.New(rand.NewSource(1)))
	in.SetLocation(3, 7)
	in.Idle(tb, 0)
	fs := in.Log()
	if len(fs) != 1 || fs[0].Cycle != 3 || fs[0].SubCycle != 7 || fs[0].Qubit != 0 {
		t.Errorf("fault stamp wrong: %+v", fs)
	}
	in.ClearLog()
	if len(in.Log()) != 0 {
		t.Error("ClearLog kept entries")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Fault {
		in := NewInjector(Uniform(0.3), 42)
		tb := clifford.New(8, rand.New(rand.NewSource(1)))
		for c := 0; c < 50; c++ {
			in.SetLocation(c, 0)
			for q := 0; q < 8; q++ {
				in.Idle(tb, q)
			}
			in.AfterGate2(tb, 0, 1)
		}
		return append([]Fault(nil), in.Log()...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no faults at p=0.3 over 400 locations")
	}
}

func TestPauliMixIsBalanced(t *testing.T) {
	in := NewInjector(Uniform(1), 11)
	tb := clifford.New(1, rand.New(rand.NewSource(1)))
	counts := map[clifford.Pauli]int{}
	for i := 0; i < 3000; i++ {
		in.AfterGate1(tb, 0)
	}
	for _, f := range in.Log() {
		counts[f.Pauli]++
	}
	for _, p := range []clifford.Pauli{clifford.PauliX, clifford.PauliY, clifford.PauliZ} {
		frac := float64(counts[p]) / 3000
		if math.Abs(frac-1.0/3) > 0.05 {
			t.Errorf("Pauli %s fraction %.3f, want ≈ 1/3", p, frac)
		}
	}
	if counts[clifford.PauliI] != 0 {
		t.Error("gate error injected identity")
	}
}
