// Package obsflags is the shared observability flag wiring for the
// repository's binaries. cmd/questsim and cmd/questbench both expose the same
// four flags — -metrics, -pprof, -trace, -trace-buf — and this package keeps
// their semantics identical instead of letting two hand-rolled copies drift:
//
//	-metrics text|json   dump the default metrics registry to stderr at exit
//	-pprof ADDR          serve net/http/pprof AND Prometheus /metrics on ADDR
//	-trace FILE          record a cycle-correlated event trace and write it
//	                     as Perfetto-loadable Chrome trace-event JSON
//	-trace-buf N         trace ring capacity in events (0 = default 256k)
//
// Lifecycle: Register the flags before flag.Parse, Start after it (and before
// the machine is built, so components resolving tracing.Default see the
// enabled tracer), Finish on the way out.
package obsflags

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"quest/internal/metrics"
	"quest/internal/tracing"
)

// Obs holds the registered flag values and the running server state.
type Obs struct {
	metricsFmt *string
	pprofAddr  *string
	tracePath  *string
	traceBuf   *int

	ln  net.Listener
	srv *http.Server
	// Log is where status lines and metric dumps go (default os.Stderr).
	Log io.Writer
}

// Register installs the shared flags on fs (flag.CommandLine in the
// binaries; a private FlagSet in tests).
func Register(fs *flag.FlagSet) *Obs {
	return &Obs{
		metricsFmt: fs.String("metrics", "", "dump the metrics registry at exit: 'text' or 'json'"),
		pprofAddr: fs.String("pprof", "",
			"serve net/http/pprof and Prometheus /metrics on this address (e.g. localhost:6060)"),
		tracePath: fs.String("trace", "",
			"write a cycle-correlated Perfetto trace (Chrome trace-event JSON) to this file"),
		traceBuf: fs.Int("trace-buf", 0,
			fmt.Sprintf("trace ring capacity in events (0 = %d)", tracing.DefaultCapacity)),
		Log: os.Stderr,
	}
}

// TraceEnabled reports whether -trace was given.
func (o *Obs) TraceEnabled() bool { return *o.tracePath != "" }

// MetricsFormat returns the -metrics value ("", "text" or "json").
func (o *Obs) MetricsFormat() string { return *o.metricsFmt }

// ShardReg returns the registry Monte-Carlo drivers should aggregate
// per-worker shards into: metrics.Default when -metrics (or -pprof, which
// serves the registry live) is requested, nil otherwise so the metrics-off
// path stays allocation-free.
func (o *Obs) ShardReg() *metrics.Registry {
	if *o.metricsFmt != "" || *o.pprofAddr != "" {
		return metrics.Default
	}
	return nil
}

// Tracer returns the process tracer (nil when tracing is off). Valid after
// Start.
func (o *Obs) Tracer() *tracing.Tracer { return tracing.Default }

// Addr returns the observability server's listen address ("" when -pprof is
// off). Useful in tests, which pass -pprof 127.0.0.1:0.
func (o *Obs) Addr() string {
	if o.ln == nil {
		return ""
	}
	return o.ln.Addr().String()
}

// Start validates the flag values, enables tracing.Default when -trace was
// given, and starts the pprof + /metrics HTTP server when -pprof was given.
func (o *Obs) Start() error {
	switch *o.metricsFmt {
	case "", "text", "json":
	default:
		return fmt.Errorf("unknown -metrics format %q (want 'text' or 'json')", *o.metricsFmt)
	}
	if *o.tracePath != "" {
		tracing.Default = tracing.New(*o.traceBuf)
	}
	if *o.pprofAddr != "" {
		ln, err := net.Listen("tcp", *o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof server: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/metrics", metrics.Handler(metrics.Default))
		o.ln = ln
		o.srv = &http.Server{Handler: mux}
		go func() {
			if err := o.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(o.Log, "pprof server:", err)
			}
		}()
		fmt.Fprintf(o.Log, "observability: serving pprof and /metrics on http://%s/\n", o.Addr())
	}
	return nil
}

// Finish flushes everything the flags asked for: the trace file (plus a
// per-track busy/stall/idle summary on Log), the metrics dump, and the HTTP
// server shutdown. Safe to call when nothing was enabled.
func (o *Obs) Finish() error {
	var firstErr error
	if *o.tracePath != "" && tracing.Default != nil {
		if err := o.writeTrace(); err != nil {
			firstErr = err
			fmt.Fprintln(o.Log, "trace:", err)
		}
	}
	switch *o.metricsFmt {
	case "text":
		fmt.Fprintln(o.Log, "-- metrics --")
		if err := metrics.Default.Snapshot().WriteText(o.Log); err != nil && firstErr == nil {
			firstErr = err
		}
	case "json":
		if err := metrics.Default.Snapshot().WriteJSON(o.Log); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if o.srv != nil {
		if err := o.srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		o.srv, o.ln = nil, nil
	}
	return firstErr
}

func (o *Obs) writeTrace() error {
	f, err := os.Create(*o.tracePath)
	if err != nil {
		return err
	}
	if err := tracing.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(o.Log, "trace: %d event(s) on %d track(s) written to %s (load in ui.perfetto.dev)\n",
		tracing.Default.Len(), len(tracing.Default.Summaries()), *o.tracePath)
	fmt.Fprintln(o.Log, "-- trace summary --")
	return tracing.Default.Summarize(o.Log)
}
