// Package obsflags is the shared observability flag wiring for the
// repository's binaries. cmd/questsim and cmd/questbench both expose the same
// flags and this package keeps their semantics identical instead of letting
// two hand-rolled copies drift:
//
//	-metrics text|json   dump the default metrics registry to stderr at exit
//	-pprof ADDR          serve net/http/pprof AND Prometheus /metrics on ADDR
//	-trace FILE          record a cycle-correlated event trace and write it
//	                     as Perfetto-loadable Chrome trace-event JSON
//	-trace-buf N         trace ring capacity in events (0 = default 256k)
//	-ledger FILE         stream a schema-versioned run ledger (JSONL): one
//	                     provenance header, one record per trial, one summary
//	                     per sweep cell (validate with tools/ledgercheck)
//	-progress            render live sweep progress (Wilson CI) on Log
//	-ci-stop W           stop each sweep cell once its 95% Wilson interval is
//	                     narrower than W (0 < W < 1); deterministic for any
//	                     worker count
//	-heatmap FILE        accumulate spatial defect/matching heatmaps and write
//	                     them as JSON (plus ASCII renders on Log) at exit
//	-shard i/N           run only the sweep cells owned by shard i of N; each
//	                     shard writes a complete ledger, and tools/ledgermerge
//	                     recombines N of them into the 1-process bytes
//	-resume FILE         resume from a partial run ledger: completed cells are
//	                     replayed verbatim, a partially-recorded cell's
//	                     leading trials are fed to the engine as prior
//	                     outcomes, and the rest executes normally
//	-events FILE         stream live quest-events/1 telemetry snapshots
//	                     (per-cell progress/rates/ETA, metrics deltas, runtime
//	                     stats) as JSONL to FILE ('-' = stdout); watch one or
//	                     many with tools/questtop
//	-bw FILE             record a cycle-windowed instruction-bandwidth profile
//	                     of every master/MCE bus and write it as a
//	                     quest-bw/1 JSONL artifact ('-' = stdout), plus an
//	                     ASCII waveform on Log; compare runs with
//	                     tools/bwreport
//	-bw-window N         bandwidth profile window width in machine cycles
//	                     (0 = default 8)
//
// At most one of -events and -bw may write to stdout ('-').
//
// With -pprof, the HTTP server additionally serves the live event stream as
// Server-Sent Events on /events and a liveness probe on /healthz.
//
// Lifecycle: Register the flags before flag.Parse, Start after it (and before
// the machine is built, so components resolving tracing.Default see the
// enabled tracer), Finish on the way out.
package obsflags

import (
	"flag"
	"fmt"
	"io"
	"maps"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"unicode/utf8"

	"quest/internal/bwprofile"
	"quest/internal/chart"
	"quest/internal/events"
	"quest/internal/heatmap"
	"quest/internal/ledger"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/tracing"
)

// Obs holds the registered flag values and the running server state.
type Obs struct {
	metricsFmt *string
	pprofAddr  *string
	tracePath  *string
	traceBuf   *int
	ledgerPath *string
	progress   *bool
	ciStop     *float64
	heatPath   *string
	shardSpec  *string
	resumePath *string
	eventsPath *string
	bwPath     *string
	bwWindow   *int

	// shard and resume are the validated flag values, resolved by Start.
	shard  ledger.ShardInfo
	resume *ledger.Resume

	ln  net.Listener
	srv *http.Server

	ledgerFile *os.File
	ledgerW    *ledger.Writer
	heat       *heatmap.Set

	// bcast is the SSE fan-out, created by Start alongside the -pprof server
	// so /events can be registered on the mux before OpenEvents runs; sampler
	// is stored by OpenEvents and read by HTTP handlers at request time,
	// hence the atomic.
	bcast        *events.Broadcaster
	sampler      atomic.Pointer[events.Sampler]
	eventsFile   *os.File
	eventsOpened bool

	// bw is the process bandwidth recorder, created by Start when -bw is
	// given; bwExperiment/bwConfig are the artifact provenance, stored by
	// OpenBW and written by Finish.
	bw           *bwprofile.Recorder
	bwExperiment string
	bwConfig     map[string]string
	bwOpened     bool
	// Log is where status lines and metric dumps go (default os.Stderr).
	Log io.Writer
}

// Register installs the shared flags on fs (flag.CommandLine in the
// binaries; a private FlagSet in tests).
func Register(fs *flag.FlagSet) *Obs {
	return &Obs{
		metricsFmt: fs.String("metrics", "", "dump the metrics registry at exit: 'text' or 'json'"),
		pprofAddr: fs.String("pprof", "",
			"serve net/http/pprof and Prometheus /metrics on this address (e.g. localhost:6060)"),
		tracePath: fs.String("trace", "",
			"write a cycle-correlated Perfetto trace (Chrome trace-event JSON) to this file"),
		traceBuf: fs.Int("trace-buf", 0,
			fmt.Sprintf("trace ring capacity in events (0 = %d)", tracing.DefaultCapacity)),
		ledgerPath: fs.String("ledger", "",
			"stream a run ledger (JSONL: header, per-trial, per-cell records) to this file"),
		progress: fs.Bool("progress", false,
			"render live sweep progress with Wilson confidence intervals on stderr"),
		ciStop: fs.Float64("ci-stop", 0,
			"stop each sweep cell once its 95% Wilson interval is narrower than this width (0 = fixed budget)"),
		heatPath: fs.String("heatmap", "",
			"write spatial defect/matching heatmaps as JSON to this file at exit"),
		shardSpec: fs.String("shard", "",
			"run shard i of N ('i/N', e.g. 0/2): only the sweep cells with global index ≡ i (mod N); merge the shard ledgers with tools/ledgermerge"),
		resumePath: fs.String("resume", "",
			"resume from this partial run ledger: replay its completed cells and trials, execute only the rest"),
		eventsPath: fs.String("events", "",
			"stream live quest-events/1 telemetry snapshots as JSONL to this file ('-' = stdout); watch with tools/questtop"),
		bwPath: fs.String("bw", "",
			"record a cycle-windowed instruction-bandwidth profile and write it as quest-bw/1 JSONL to this file ('-' = stdout); compare with tools/bwreport"),
		bwWindow: fs.Int("bw-window", 0,
			fmt.Sprintf("bandwidth profile window width in machine cycles (0 = %d)", bwprofile.DefaultWindow)),
		Log: os.Stderr,
	}
}

// TraceEnabled reports whether -trace was given.
func (o *Obs) TraceEnabled() bool { return *o.tracePath != "" }

// MetricsFormat returns the -metrics value ("", "text" or "json").
func (o *Obs) MetricsFormat() string { return *o.metricsFmt }

// ShardReg returns the registry Monte-Carlo drivers should aggregate
// per-worker shards into: metrics.Default when -metrics (or -pprof, which
// serves the registry live, or -events, whose snapshots carry registry
// deltas) is requested, nil otherwise so the metrics-off path stays
// allocation-free.
func (o *Obs) ShardReg() *metrics.Registry {
	if *o.metricsFmt != "" || *o.pprofAddr != "" || *o.eventsPath != "" {
		return metrics.Default
	}
	return nil
}

// Tracer returns the process tracer (nil when tracing is off). Valid after
// Start.
func (o *Obs) Tracer() *tracing.Tracer { return tracing.Default }

// CIStop returns the -ci-stop width (0 = adaptive stopping off). Validated
// by Start.
func (o *Obs) CIStop() float64 { return *o.ciStop }

// ProgressEnabled reports whether -progress was given (for binaries that
// render their own non-sweep progress, e.g. questsim's idle cycles).
func (o *Obs) ProgressEnabled() bool { return *o.progress }

// HeatSet returns the process heat-collector set (nil when -heatmap is off,
// which keeps the decode paths allocation-free). Valid after Start.
func (o *Obs) HeatSet() *heatmap.Set { return o.heat }

// BW returns the process bandwidth recorder (nil when -bw is off, which
// keeps the dispatch and cache-replay paths allocation-free). Valid after
// Start. Sweep drivers pass it through core.SweepObs.BW; cycle-loop binaries
// (questsim) hand it straight to the machine config.
func (o *Obs) BW() *bwprofile.Recorder { return o.bw }

// OpenBW stores the experiment name and config the quest-bw/1 artifact's
// provenance header will carry; Finish writes the file. No-op when -bw is
// off. Call once, after Start and before the run.
func (o *Obs) OpenBW(experiment string, config map[string]string) error {
	if *o.bwPath == "" {
		return nil
	}
	if o.bwOpened {
		return fmt.Errorf("bw: OpenBW called twice")
	}
	o.bwOpened = true
	o.bwExperiment, o.bwConfig = experiment, config
	return nil
}

// Shard returns the validated -shard value (the zero ShardInfo when
// unsharded). Valid after Start.
func (o *Obs) Shard() ledger.ShardInfo { return o.shard }

// Resume returns the parsed -resume checkpoint (nil when off). Valid after
// Start, which reads the whole file into memory — so -resume and -ledger may
// name the same path: the checkpoint is consumed before OpenLedger truncates
// it.
func (o *Obs) Resume() *ledger.Resume { return o.resume }

// OpenLedger creates the -ledger file and writes its provenance header; it
// returns (nil, nil) when -ledger is off. Call once, after Start and before
// the sweep; Finish flushes and closes the file. The experiment name and
// config land in the header so a ledger is self-describing.
func (o *Obs) OpenLedger(experiment string, config map[string]string) (*ledger.Writer, error) {
	if *o.ledgerPath == "" {
		return nil, nil
	}
	if o.ledgerW != nil {
		return nil, fmt.Errorf("ledger: OpenLedger called twice")
	}
	if o.resume != nil {
		// The checkpoint must describe the run being resumed: same experiment,
		// same flag provenance. Cell-level seed checks (core.SweepObs.Resume)
		// catch deeper mismatches; this catches the obvious ones up front.
		h := o.resume.Header()
		if h.Experiment != experiment {
			return nil, fmt.Errorf("ledger: -resume checkpoint is from experiment %q, this run is %q", h.Experiment, experiment)
		}
		if !maps.Equal(h.Config, config) {
			return nil, fmt.Errorf("ledger: -resume checkpoint config %v does not match this run's %v — rerun with the original flags", h.Config, config)
		}
	}
	f, err := os.Create(*o.ledgerPath)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	lw, err := ledger.NewShardWriter(f, experiment, config, 1, o.shard)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: %w", err)
	}
	o.ledgerFile, o.ledgerW = f, lw
	return lw, nil
}

// SweepProgress returns the cell-labelled live progress sink for -progress
// and/or -events (nil when both are off). With -progress, snapshots
// overwrite one status line per cell on Log and the Done snapshot finishes
// the line; with events, every snapshot also feeds the telemetry sampler.
// The stream reflects live completion order and is display only —
// ledger/heatmap/row contents stay deterministic.
func (o *Obs) SweepProgress() func(cell string, p mc.Progress) {
	if !*o.progress && !o.EventsEnabled() {
		return nil
	}
	// lastLen is the rune width of the last in-place status line: a shorter
	// line would otherwise leave the tail of its longer predecessor on
	// screen after the \r overwrite, so render pads to the previous width.
	// Cells run sequentially and progressState serializes emits, so a plain
	// closure variable suffices.
	lastLen := 0
	return func(cell string, p mc.Progress) {
		if smp := o.sampler.Load(); smp != nil {
			smp.ObserveCell(cell, p) // pure side-band; free when events off
		}
		if !*o.progress {
			return
		}
		var line string
		if p.Done {
			line = fmt.Sprintf("%s: %d trials, %d failures, CI [%.4f, %.4f] done",
				cell, p.Completed, p.Failures, p.WilsonLo, p.WilsonHi)
		} else {
			line = fmt.Sprintf("%s: %d trials, %d failures, CI width %.4f",
				cell, p.Completed, p.Failures, p.WilsonHi-p.WilsonLo)
		}
		width := utf8.RuneCountInString(line)
		pad := ""
		if width < lastLen {
			pad = strings.Repeat(" ", lastLen-width)
		}
		if p.Done {
			fmt.Fprintf(o.Log, "\r%s%s\n", line, pad)
			lastLen = 0
			return
		}
		fmt.Fprintf(o.Log, "\r%s%s", line, pad)
		lastLen = width
	}
}

// EventsEnabled reports whether live telemetry sampling is on: -events
// writes the stream to a file, and -pprof serves it over SSE on /events —
// either one activates the sampler.
func (o *Obs) EventsEnabled() bool { return *o.eventsPath != "" || *o.pprofAddr != "" }

// Events returns the live telemetry sampler (nil when events are off, which
// every sampler method treats as a no-op). Valid after OpenEvents; binaries
// with non-sweep progress (questsim's cycle loop) feed it directly via
// ObserveCell.
func (o *Obs) Events() *events.Sampler { return o.sampler.Load() }

// OpenEvents starts the live telemetry sampler: it writes the quest-events/1
// provenance header (stamping the run's shard identity) and begins emitting
// periodic snapshots to the -events file and/or the /events SSE feed. No-op
// when EventsEnabled is false. Call once, after Start and before the sweep;
// Finish emits the final snapshot and closes the file.
func (o *Obs) OpenEvents(experiment string, config map[string]string) error {
	if !o.EventsEnabled() {
		return nil
	}
	if o.eventsOpened {
		return fmt.Errorf("events: OpenEvents called twice")
	}
	var w io.Writer
	switch *o.eventsPath {
	case "":
		// -pprof without -events: SSE-only stream, no file.
	case "-":
		w = os.Stdout
	default:
		f, err := os.Create(*o.eventsPath)
		if err != nil {
			return fmt.Errorf("events: %w", err)
		}
		o.eventsFile = f
		w = f
	}
	smp := events.NewSampler(events.NewWriter(w, o.bcast), o.ShardReg())
	smp.SetBW(o.bw) // nil when -bw is off; snapshots then omit the BW section
	host, _ := os.Hostname()
	h := events.Header{
		Experiment: experiment,
		GoVersion:  runtime.Version(),
		Host:       host,
		PID:        os.Getpid(),
		ShardIndex: o.shard.Index,
		ShardCount: o.shard.Count,
		Config:     config,
	}
	if err := smp.Start(h, 0); err != nil {
		if o.eventsFile != nil {
			o.eventsFile.Close()
			o.eventsFile = nil
		}
		return err
	}
	o.eventsOpened = true
	o.sampler.Store(smp)
	return nil
}

// closeEvents stops the sampler (emitting the final snapshot) and closes
// the -events file.
func (o *Obs) closeEvents() error {
	smp := o.sampler.Load()
	o.sampler.Store(nil)
	var err error
	snaps := 0
	if smp != nil {
		err = smp.Stop()
		snaps = smp.Snapshots()
	}
	if f := o.eventsFile; f != nil {
		o.eventsFile = nil
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Fprintf(o.Log, "events: %d snapshot(s) written to %s (watch with questtop)\n",
				snaps, *o.eventsPath)
		}
	}
	return err
}

// Addr returns the observability server's listen address ("" when -pprof is
// off). Useful in tests, which pass -pprof 127.0.0.1:0.
func (o *Obs) Addr() string {
	if o.ln == nil {
		return ""
	}
	return o.ln.Addr().String()
}

// Start validates the flag values, enables tracing.Default when -trace was
// given, and starts the pprof + /metrics HTTP server when -pprof was given.
func (o *Obs) Start() error {
	switch *o.metricsFmt {
	case "", "text", "json":
	default:
		return fmt.Errorf("unknown -metrics format %q (want 'text' or 'json')", *o.metricsFmt)
	}
	if *o.ciStop < 0 || *o.ciStop >= 1 {
		return fmt.Errorf("-ci-stop %v out of range: want a Wilson interval width in (0, 1), or 0 to disable", *o.ciStop)
	}
	if *o.traceBuf < 0 {
		return fmt.Errorf("-trace-buf %d out of range: want a ring capacity in events, or 0 for the default %d", *o.traceBuf, tracing.DefaultCapacity)
	}
	if *o.bwWindow < 0 {
		return fmt.Errorf("-bw-window %d out of range: want a window width in machine cycles, or 0 for the default %d", *o.bwWindow, bwprofile.DefaultWindow)
	}
	if *o.eventsPath == "-" && *o.bwPath == "-" {
		// Both artifacts are line-oriented JSONL on their own schema; two
		// writers interleaving on one stdout would corrupt both.
		return fmt.Errorf("-events - and -bw - both claim stdout: at most one stream may write to '-', give the other a file path")
	}
	shard, err := ledger.ParseShardSpec(*o.shardSpec)
	if err != nil {
		return fmt.Errorf("-shard: %w", err)
	}
	o.shard = shard
	if *o.resumePath != "" {
		if *o.heatPath != "" {
			// Heat statistics are not recorded in the ledger, so a resumed
			// run cannot reconstruct the skipped trials' contributions — the
			// heatmap would silently undercount.
			return fmt.Errorf("-resume cannot be combined with -heatmap: the ledger does not record heat, so replayed cells would be missing from it")
		}
		data, err := os.ReadFile(*o.resumePath)
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		res, err := ledger.NewResume(data)
		if err != nil {
			return fmt.Errorf("-resume %s: %w", *o.resumePath, err)
		}
		h := res.Header()
		if got := (ledger.ShardInfo{Index: h.ShardIndex, Count: h.ShardCount}); got != o.shard {
			return fmt.Errorf("-resume %s: checkpoint is shard %q but this run is shard %q — resume each shard's ledger under its own -shard flag",
				*o.resumePath, specOrUnsharded(got), specOrUnsharded(o.shard))
		}
		complete, partial := res.Counts()
		fmt.Fprintf(o.Log, "resume: %s holds %d completed cell(s) and %d partial cell(s)", *o.resumePath, complete, partial)
		if res.Truncated() {
			fmt.Fprint(o.Log, " (torn final line dropped)")
		}
		fmt.Fprintln(o.Log)
		o.resume = res
	}
	if *o.tracePath != "" {
		tracing.Default = tracing.New(*o.traceBuf)
	}
	if *o.heatPath != "" {
		o.heat = heatmap.NewSet()
	}
	if *o.bwPath != "" {
		o.bw = bwprofile.New(*o.bwWindow)
	}
	if *o.pprofAddr != "" {
		ln, err := net.Listen("tcp", *o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof server: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/metrics", metrics.Handler(metrics.Default))
		// The SSE feed and liveness probe ride the same server. The
		// broadcaster exists from here so /events subscribers connected
		// before OpenEvents still get the header when the stream starts;
		// /healthz resolves the sampler per request (it is stored later).
		o.bcast = events.NewBroadcaster()
		mux.Handle("/events", o.bcast)
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			events.Healthz(o.sampler.Load()).ServeHTTP(w, r)
		})
		o.ln = ln
		o.srv = &http.Server{Handler: mux}
		go func() {
			if err := o.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(o.Log, "pprof server:", err)
			}
		}()
		fmt.Fprintf(o.Log, "observability: serving pprof, /metrics, /events and /healthz on http://%s/\n", o.Addr())
	}
	return nil
}

// Finish flushes everything the flags asked for: the trace file (plus a
// per-track busy/stall/idle summary on Log), the ledger, the heatmap JSON
// (plus ASCII defect-density renders on Log), the quest-bw/1 bandwidth
// profile (plus an ASCII waveform on Log), the metrics dump, and the HTTP
// server shutdown. Safe to call when nothing was enabled.
func (o *Obs) Finish() error {
	var firstErr error
	if o.resume != nil {
		if left := o.resume.Unconsumed(); len(left) > 0 {
			fmt.Fprintf(o.Log, "resume: warning: %d recorded cell(s) were never reached by this run (%q) — the checkpoint is from a different invocation and they were not carried forward\n",
				len(left), left)
		}
	}
	if o.eventsOpened {
		o.eventsOpened = false
		// Stop the sampler first so the stream's final snapshot captures the
		// cells' terminal state before anything else is torn down.
		if err := o.closeEvents(); err != nil {
			firstErr = err
			fmt.Fprintln(o.Log, "events:", err)
		}
	}
	if *o.tracePath != "" && tracing.Default != nil {
		if err := o.writeTrace(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			fmt.Fprintln(o.Log, "trace:", err)
		}
	}
	if o.ledgerW != nil {
		if err := o.closeLedger(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			fmt.Fprintln(o.Log, "ledger:", err)
		}
	}
	if o.heat != nil {
		if err := o.writeHeat(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			fmt.Fprintln(o.Log, "heatmap:", err)
		}
	}
	if o.bw != nil {
		if err := o.writeBW(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			fmt.Fprintln(o.Log, "bw:", err)
		}
	}
	switch *o.metricsFmt {
	case "text":
		fmt.Fprintln(o.Log, "-- metrics --")
		if err := metrics.Default.Snapshot().WriteText(o.Log); err != nil && firstErr == nil {
			firstErr = err
		}
	case "json":
		if err := metrics.Default.Snapshot().WriteJSON(o.Log); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if o.srv != nil {
		if err := o.srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		o.srv, o.ln = nil, nil
	}
	return firstErr
}

func (o *Obs) closeLedger() error {
	lw, f := o.ledgerW, o.ledgerFile
	o.ledgerW, o.ledgerFile = nil, nil
	if err := lw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(o.Log, "ledger: %d cell(s), %d trial record(s) written to %s (validate with ledgercheck)\n",
		lw.Cells(), lw.Trials(), *o.ledgerPath)
	return nil
}

func (o *Obs) writeHeat() error {
	f, err := os.Create(*o.heatPath)
	if err != nil {
		return err
	}
	if err := o.heat.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(o.Log, "heatmap: %d grid(s) written to %s\n", o.heat.Len(), *o.heatPath)
	for _, name := range o.heat.Names() {
		c := o.heat.Lookup(name)
		render, err := chart.Heatmap(c.Defects(), chart.HeatmapOptions{
			Title:  fmt.Sprintf("%s defect births (%d total)", name, c.TotalDefects()),
			Legend: true,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(o.Log, render)
	}
	return nil
}

func (o *Obs) writeBW() error {
	bw := o.bw
	o.bw = nil
	if *o.bwPath == "-" {
		if err := bw.WriteJSONL(os.Stdout, o.bwExperiment, o.bwConfig); err != nil {
			return err
		}
	} else {
		f, err := os.Create(*o.bwPath)
		if err != nil {
			return err
		}
		if err := bw.WriteJSONL(f, o.bwExperiment, o.bwConfig); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	s := bw.Summary()
	fmt.Fprintf(o.Log, "bw: %d window(s) over %d cycle(s) written to %s (compare with bwreport)\n",
		s.Windows, s.Cycles, *o.bwPath)
	wins := bw.WindowBytes()
	if len(wins) == 0 {
		return nil
	}
	vals := make([]float64, len(wins))
	for i, b := range wins {
		vals[i] = float64(b)
	}
	render, err := chart.Waveform(vals, chart.WaveformOptions{
		Title: fmt.Sprintf("bus bytes per %d-cycle window (peak %d B, sustained %.3g B, burstiness %.2f)",
			s.WindowCycles, s.PeakBytes, s.SustainedBytes, s.Burstiness),
		Unit: " B",
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Log, render)
	return nil
}

// specOrUnsharded renders a ShardInfo for error messages ("unsharded"
// instead of the empty string).
func specOrUnsharded(s ledger.ShardInfo) string {
	if !s.Sharded() {
		return "unsharded"
	}
	return s.String()
}

func (o *Obs) writeTrace() error {
	f, err := os.Create(*o.tracePath)
	if err != nil {
		return err
	}
	if err := tracing.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(o.Log, "trace: %d event(s) on %d track(s) written to %s (load in ui.perfetto.dev)\n",
		tracing.Default.Len(), len(tracing.Default.Summaries()), *o.tracePath)
	fmt.Fprintln(o.Log, "-- trace summary --")
	return tracing.Default.Summarize(o.Log)
}
