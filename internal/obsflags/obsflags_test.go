package obsflags

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quest/internal/heatmap"
	"quest/internal/ledger"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/tracing"
)

// resetDefaults restores process-wide state this package mutates so tests do
// not leak into each other.
func resetDefaults() {
	tracing.Default = nil
	metrics.Default = metrics.New()
}

func TestStartRejectsBadMetricsFormat(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse([]string{"-metrics", "xml"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err == nil {
		t.Fatal("Start accepted -metrics xml")
	}
}

func TestTraceLifecycle(t *testing.T) {
	defer resetDefaults()
	path := filepath.Join(t.TempDir(), "out.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-trace", path, "-trace-buf", "1024"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	tr := o.Tracer()
	if tr == nil || tr.Capacity() != 1024 {
		t.Fatalf("tracer = %v (cap %d), want enabled with cap 1024", tr, tr.Capacity())
	}
	tr.Span("mce", 0, "busy", 0, 1)
	tr.Instant("master", 0, "dispatch", 0)
	var log bytes.Buffer
	o.Log = &log
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tracing.Validate(data)
	if err != nil {
		t.Fatalf("written trace invalid: %v", err)
	}
	if rep.Events != 2 || rep.Procs != 2 {
		t.Errorf("report = %+v, want 2 events on 2 procs", rep)
	}
	if !strings.Contains(log.String(), "trace summary") {
		t.Errorf("Finish did not print the track summary:\n%s", log.String())
	}
}

func TestMetricsServerServesPrometheusAndPprof(t *testing.T) {
	defer resetDefaults()
	resetDefaults()
	metrics.Default.Counter("master.dispatched").Add(5)
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Finish()
	if o.ShardReg() != metrics.Default {
		t.Error("ShardReg should aggregate into Default while serving")
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + o.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "# TYPE quest_master_dispatched counter") ||
		!strings.Contains(body, "quest_master_dispatched 5") {
		t.Errorf("/metrics missing exposition:\n%s", body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestShardRegNilWhenObservabilityOff(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.ShardReg() != nil {
		t.Error("ShardReg should be nil with no -metrics/-pprof")
	}
	if o.TraceEnabled() {
		t.Error("TraceEnabled with no -trace")
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if tracing.Default != nil {
		t.Error("Start enabled tracing without -trace")
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRejectsBadCIStop(t *testing.T) {
	defer resetDefaults()
	for _, bad := range []string{"-0.1", "1", "1.5"} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		o := Register(fs)
		if err := fs.Parse([]string{"-ci-stop", bad}); err != nil {
			t.Fatal(err)
		}
		err := o.Start()
		if err == nil {
			t.Errorf("Start accepted -ci-stop %s", bad)
			continue
		}
		if !strings.Contains(err.Error(), "ci-stop") {
			t.Errorf("-ci-stop %s: error %q does not name the flag", bad, err)
		}
	}
	// 0 (off) and in-range widths must pass.
	for _, good := range []string{"0", "0.05", "0.999"} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		o := Register(fs)
		if err := fs.Parse([]string{"-ci-stop", good}); err != nil {
			t.Fatal(err)
		}
		if err := o.Start(); err != nil {
			t.Errorf("Start rejected -ci-stop %s: %v", good, err)
		}
	}
}

func TestLedgerAndHeatmapLifecycle(t *testing.T) {
	defer resetDefaults()
	dir := t.TempDir()
	lpath := filepath.Join(dir, "run.jsonl")
	hpath := filepath.Join(dir, "heat.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-ledger", lpath, "-heatmap", hpath, "-ci-stop", "0.2", "-progress"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if o.CIStop() != 0.2 {
		t.Errorf("CIStop() = %v, want 0.2", o.CIStop())
	}
	if o.SweepProgress() == nil {
		t.Error("SweepProgress() = nil with -progress set")
	}
	lw, err := o.OpenLedger("lifecycle-test", map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	if lw == nil {
		t.Fatal("OpenLedger returned nil writer with -ledger set")
	}
	lw.WriteTrial(ledger.Trial{Cell: "c", Trial: 0, Seed: ledger.SeedString(7), Fail: true})
	lw.WriteCell(ledger.Cell{Cell: "c", Seed: ledger.SeedString(7), Budget: 1, Trials: 1,
		Failures: 1, Rate: 1, WilsonLo: 0.2, WilsonHi: 1})
	heat := o.HeatSet()
	if heat == nil {
		t.Fatal("HeatSet() = nil with -heatmap set")
	}
	heat.Collector("lat-3x3", 3, 3).Defect(1, 1)
	var log bytes.Buffer
	o.Log = &log
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.Validate(data); err != nil {
		t.Errorf("ledgercheck rejects the flag-driven ledger: %v", err)
	}
	hdata, err := os.ReadFile(hpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := heatmap.ReadFile(hdata); err != nil {
		t.Errorf("heatmap file unreadable: %v", err)
	}
	for _, want := range []string{"ledger:", "heatmap:", "defect births"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("Finish log missing %q:\n%s", want, log.String())
		}
	}
}

func TestSweepProgressRenders(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	var log bytes.Buffer
	o.Log = &log
	if err := fs.Parse([]string{"-progress"}); err != nil {
		t.Fatal(err)
	}
	render := o.SweepProgress()
	render("cell-a", mc.Progress{Completed: 10, Failures: 2, WilsonLo: 0.05, WilsonHi: 0.4})
	render("cell-a", mc.Progress{Completed: 20, Failures: 3, WilsonLo: 0.05, WilsonHi: 0.3, Done: true})
	out := log.String()
	if !strings.Contains(out, "cell-a") || !strings.Contains(out, "done") {
		t.Errorf("renderer output missing cell label or done marker: %q", out)
	}
}
