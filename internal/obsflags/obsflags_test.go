package obsflags

import (
	"bufio"
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quest/internal/bwprofile"
	"quest/internal/events"
	"quest/internal/heatmap"
	"quest/internal/ledger"
	"quest/internal/mc"
	"quest/internal/metrics"
	"quest/internal/tracing"
)

// resetDefaults restores process-wide state this package mutates so tests do
// not leak into each other.
func resetDefaults() {
	tracing.Default = nil
	metrics.Default = metrics.New()
}

func TestStartRejectsBadMetricsFormat(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse([]string{"-metrics", "xml"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err == nil {
		t.Fatal("Start accepted -metrics xml")
	}
}

func TestTraceLifecycle(t *testing.T) {
	defer resetDefaults()
	path := filepath.Join(t.TempDir(), "out.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-trace", path, "-trace-buf", "1024"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	tr := o.Tracer()
	if tr == nil || tr.Capacity() != 1024 {
		t.Fatalf("tracer = %v (cap %d), want enabled with cap 1024", tr, tr.Capacity())
	}
	tr.Span("mce", 0, "busy", 0, 1)
	tr.Instant("master", 0, "dispatch", 0)
	var log bytes.Buffer
	o.Log = &log
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tracing.Validate(data)
	if err != nil {
		t.Fatalf("written trace invalid: %v", err)
	}
	if rep.Events != 2 || rep.Procs != 2 {
		t.Errorf("report = %+v, want 2 events on 2 procs", rep)
	}
	if !strings.Contains(log.String(), "trace summary") {
		t.Errorf("Finish did not print the track summary:\n%s", log.String())
	}
}

func TestMetricsServerServesPrometheusAndPprof(t *testing.T) {
	defer resetDefaults()
	resetDefaults()
	metrics.Default.Counter("master.dispatched").Add(5)
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Finish()
	if o.ShardReg() != metrics.Default {
		t.Error("ShardReg should aggregate into Default while serving")
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + o.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "# TYPE quest_master_dispatched counter") ||
		!strings.Contains(body, "quest_master_dispatched 5") {
		t.Errorf("/metrics missing exposition:\n%s", body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestShardRegNilWhenObservabilityOff(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.ShardReg() != nil {
		t.Error("ShardReg should be nil with no -metrics/-pprof")
	}
	if o.TraceEnabled() {
		t.Error("TraceEnabled with no -trace")
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if tracing.Default != nil {
		t.Error("Start enabled tracing without -trace")
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRejectsBadCIStop(t *testing.T) {
	defer resetDefaults()
	for _, bad := range []string{"-0.1", "1", "1.5"} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		o := Register(fs)
		if err := fs.Parse([]string{"-ci-stop", bad}); err != nil {
			t.Fatal(err)
		}
		err := o.Start()
		if err == nil {
			t.Errorf("Start accepted -ci-stop %s", bad)
			continue
		}
		if !strings.Contains(err.Error(), "ci-stop") {
			t.Errorf("-ci-stop %s: error %q does not name the flag", bad, err)
		}
	}
	// 0 (off) and in-range widths must pass.
	for _, good := range []string{"0", "0.05", "0.999"} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		o := Register(fs)
		if err := fs.Parse([]string{"-ci-stop", good}); err != nil {
			t.Fatal(err)
		}
		if err := o.Start(); err != nil {
			t.Errorf("Start rejected -ci-stop %s: %v", good, err)
		}
	}
}

func TestLedgerAndHeatmapLifecycle(t *testing.T) {
	defer resetDefaults()
	dir := t.TempDir()
	lpath := filepath.Join(dir, "run.jsonl")
	hpath := filepath.Join(dir, "heat.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-ledger", lpath, "-heatmap", hpath, "-ci-stop", "0.2", "-progress"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if o.CIStop() != 0.2 {
		t.Errorf("CIStop() = %v, want 0.2", o.CIStop())
	}
	if o.SweepProgress() == nil {
		t.Error("SweepProgress() = nil with -progress set")
	}
	lw, err := o.OpenLedger("lifecycle-test", map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	if lw == nil {
		t.Fatal("OpenLedger returned nil writer with -ledger set")
	}
	lw.WriteTrial(ledger.Trial{Cell: "c", Trial: 0, Seed: ledger.SeedString(7), Fail: true})
	lw.WriteCell(ledger.Cell{Cell: "c", Seed: ledger.SeedString(7), Budget: 1, Trials: 1,
		Failures: 1, Rate: 1, WilsonLo: 0.2, WilsonHi: 1})
	heat := o.HeatSet()
	if heat == nil {
		t.Fatal("HeatSet() = nil with -heatmap set")
	}
	heat.Collector("lat-3x3", 3, 3).Defect(1, 1)
	var log bytes.Buffer
	o.Log = &log
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(lpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ledger.Validate(data); err != nil {
		t.Errorf("ledgercheck rejects the flag-driven ledger: %v", err)
	}
	hdata, err := os.ReadFile(hpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := heatmap.ReadFile(hdata); err != nil {
		t.Errorf("heatmap file unreadable: %v", err)
	}
	for _, want := range []string{"ledger:", "heatmap:", "defect births"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("Finish log missing %q:\n%s", want, log.String())
		}
	}
}

func TestSweepProgressRenders(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	var log bytes.Buffer
	o.Log = &log
	if err := fs.Parse([]string{"-progress"}); err != nil {
		t.Fatal(err)
	}
	render := o.SweepProgress()
	render("cell-a", mc.Progress{Completed: 10, Failures: 2, WilsonLo: 0.05, WilsonHi: 0.4})
	render("cell-a", mc.Progress{Completed: 20, Failures: 3, WilsonLo: 0.05, WilsonHi: 0.3, Done: true})
	out := log.String()
	if !strings.Contains(out, "cell-a") || !strings.Contains(out, "done") {
		t.Errorf("renderer output missing cell label or done marker: %q", out)
	}
}

// TestSweepProgressPadsStaleChars pins the \r-overwrite fix: when a shorter
// status line follows a longer one, the renderer pads to the previous line's
// width so no tail of the old line survives on screen.
func TestSweepProgressPadsStaleChars(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	var log bytes.Buffer
	o.Log = &log
	if err := fs.Parse([]string{"-progress"}); err != nil {
		t.Fatal(err)
	}
	render := o.SweepProgress()
	render("p=0.0100", mc.Progress{Completed: 1000000, Failures: 100000, WilsonLo: 0.0900, WilsonHi: 0.1899})
	render("p=0.0100", mc.Progress{Completed: 5, Failures: 1, WilsonLo: 0.01, WilsonHi: 0.06})
	render("p=0.0100", mc.Progress{Completed: 9, Failures: 1, WilsonLo: 0.01, WilsonHi: 0.05, Done: true})
	frames := strings.Split(log.String(), "\r")[1:] // leading "" before the first \r
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3: %q", len(frames), log.String())
	}
	if !strings.HasSuffix(frames[2], "\n") {
		t.Errorf("done frame does not finish the line: %q", frames[2])
	}
	// Simulate the terminal: each \r-frame overwrites the line from column
	// 0, leaving whatever it does not reach. After the short frames, the
	// visible line must be exactly the frame's own text — no tail of the
	// long first line (the pre-fix symptom: "... CI width 0.0600 0.1899").
	var screen []rune
	for i, f := range frames {
		fr := []rune(strings.TrimSuffix(f, "\n"))
		if len(fr) > len(screen) {
			screen = append(screen, make([]rune, len(fr)-len(screen))...)
		}
		copy(screen, fr)
		visible := strings.TrimRight(string(screen), " ")
		if want := strings.TrimRight(string(fr), " "); visible != want {
			t.Errorf("frame %d: screen shows %q, want %q — stale characters survive the overwrite",
				i, visible, want)
		}
	}
	// A fresh cell after Done must not inherit the old width (no spurious
	// padding on the first line of the next cell).
	log.Reset()
	render("p=0.0200", mc.Progress{Completed: 5, Failures: 1, WilsonLo: 0.01, WilsonHi: 0.06})
	if strings.Contains(log.String(), "  ") {
		t.Errorf("first frame of a new cell carries stale padding: %q", log.String())
	}
}

func TestStartRejectsNegativeTraceBuf(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse([]string{"-trace-buf", "-1"}); err != nil {
		t.Fatal(err)
	}
	err := o.Start()
	if err == nil {
		t.Fatal("Start accepted -trace-buf -1")
	}
	if !strings.Contains(err.Error(), "trace-buf") {
		t.Errorf("error %q does not name the flag", err)
	}
	// 0 (default) and positive capacities must pass.
	for _, good := range []string{"0", "1024"} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		o := Register(fs)
		if err := fs.Parse([]string{"-trace-buf", good}); err != nil {
			t.Fatal(err)
		}
		if err := o.Start(); err != nil {
			t.Errorf("Start rejected -trace-buf %s: %v", good, err)
		}
	}
}

// TestFinishFirstErrAggregation pins Finish's error contract: the first
// failing stage's error is returned, and every later stage still runs (so a
// broken trace file cannot suppress the ledger flush or the metrics dump).
func TestFinishFirstErrAggregation(t *testing.T) {
	defer resetDefaults()
	dir := t.TempDir()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	// Trace and heatmap point into a directory that does not exist, so both
	// writes fail at Finish; the ledger is sabotaged below.
	tracePath := filepath.Join(dir, "missing", "trace.json")
	heatPath := filepath.Join(dir, "missing", "heat.json")
	args := []string{"-trace", tracePath, "-heatmap", heatPath,
		"-ledger", filepath.Join(dir, "run.jsonl"), "-metrics", "text"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	lw, err := o.OpenLedger("finish-test", nil)
	if err != nil {
		t.Fatal(err)
	}
	lw.WriteCell(ledger.Cell{Cell: "c", Seed: ledger.SeedString(7), Budget: 1, Trials: 1})
	// Close the file underneath the buffered writer: the ledger stage's
	// Flush in Finish now fails too, after the trace stage already has.
	o.ledgerFile.Close()
	o.heat.Collector("g", 2, 2).Defect(0, 0)

	var log bytes.Buffer
	o.Log = &log
	finishErr := o.Finish()
	if finishErr == nil {
		t.Fatal("Finish returned nil with three failing stages")
	}
	// First error wins: the trace stage fails before ledger and heatmap.
	if !strings.Contains(finishErr.Error(), "trace.json") {
		t.Errorf("Finish returned %q, want the trace error (first failing stage)", finishErr)
	}
	// Later stages still ran: each failure is logged, and the metrics dump
	// at the end still rendered.
	for _, want := range []string{"trace:", "ledger:", "heatmap:", "-- metrics --"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("Finish log missing %q — a later stage was skipped:\n%s", want, log.String())
		}
	}
}

func TestEventsLifecycle(t *testing.T) {
	defer resetDefaults()
	path := filepath.Join(t.TempDir(), "events.jsonl")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-events", path, "-shard", "1/2"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if !o.EventsEnabled() {
		t.Fatal("EventsEnabled() = false with -events set")
	}
	if o.ShardReg() != metrics.Default {
		t.Error("ShardReg should aggregate into Default with -events set (snapshots carry deltas)")
	}
	if err := o.OpenEvents("events-test", map[string]string{"trials": "40"}); err != nil {
		t.Fatal(err)
	}
	if err := o.OpenEvents("events-test", nil); err == nil {
		t.Error("second OpenEvents accepted")
	}
	// The sweep progress sink must feed the sampler even without -progress.
	sink := o.SweepProgress()
	if sink == nil {
		t.Fatal("SweepProgress() = nil with -events set")
	}
	sink("cell-a", mc.Progress{Completed: 40, Failures: 2, Budget: 40, WilsonLo: 0.01, WilsonHi: 0.15, Done: true})

	var log bytes.Buffer
	o.Log = &log
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "events:") {
		t.Errorf("Finish log missing events summary:\n%s", log.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := events.Validate(data)
	if err != nil {
		t.Fatalf("flag-driven event stream invalid: %v", err)
	}
	if rep.Experiment != "events-test" || rep.ShardIndex != 1 || rep.ShardCount != 2 {
		t.Errorf("report provenance = %+v, want events-test shard 1/2", rep)
	}
	if rep.Snapshots < 1 || rep.Cells != 1 || rep.DoneCells != 1 {
		t.Errorf("report = %+v, want >=1 snapshot with one done cell", rep)
	}
	if o.Events() != nil {
		t.Error("sampler still live after Finish")
	}
}

func TestEventsSSEAndHealthz(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	// -pprof alone: the SSE endpoint and probe exist, events are SSE-only.
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Finish()

	get := func(path string) string {
		resp, err := http.Get("http://" + o.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String()
	}
	if got := get("/healthz"); !strings.Contains(got, `"events":false`) {
		t.Errorf("/healthz before OpenEvents = %q", got)
	}
	if err := o.OpenEvents("sse-test", nil); err != nil {
		t.Fatal(err)
	}
	if got := get("/healthz"); !strings.Contains(got, `"events":true`) {
		t.Errorf("/healthz after OpenEvents = %q", got)
	}

	// /events replays the provenance header to a late subscriber.
	resp, err := http.Get("http://" + o.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			if !strings.Contains(line, `"record":"header"`) || !strings.Contains(line, "sse-test") {
				t.Errorf("first SSE frame = %q, want replayed header", line)
			}
			return
		}
	}
	t.Fatalf("no SSE frame received: %v", sc.Err())
}

func TestStartRejectsTwoStdoutStreams(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-events", "-", "-bw", "-"}); err != nil {
		t.Fatal(err)
	}
	err := o.Start()
	if err == nil {
		t.Fatal("Start accepted -events - with -bw -: two JSONL streams would interleave on stdout")
	}
	if !strings.Contains(err.Error(), "stdout") {
		t.Errorf("error %q does not name the stdout conflict", err)
	}
}

func TestStartAllowsOneStdoutStream(t *testing.T) {
	defer resetDefaults()
	for _, argv := range [][]string{
		{"-events", "-"},
		{"-bw", "-"},
	} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		o := Register(fs)
		o.Log = io.Discard
		if err := fs.Parse(argv); err != nil {
			t.Fatal(err)
		}
		if err := o.Start(); err != nil {
			t.Errorf("Start(%v): %v, want accepted", argv, err)
		}
	}
}

func TestStartRejectsNegativeBWWindow(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse([]string{"-bw", "x.jsonl", "-bw-window", "-3"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err == nil {
		t.Fatal("Start accepted -bw-window -3")
	}
}

func TestBWLifecycle(t *testing.T) {
	defer resetDefaults()
	path := filepath.Join(t.TempDir(), "bw.jsonl")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	var log bytes.Buffer
	o.Log = &log
	if err := fs.Parse([]string{"-bw", path, "-bw-window", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	rec := o.BW()
	if rec == nil {
		t.Fatal("BW() = nil after Start with -bw")
	}
	if err := o.OpenBW("memory", map[string]string{"p": "0.001"}); err != nil {
		t.Fatal(err)
	}
	if err := o.OpenBW("memory", nil); err == nil {
		t.Fatal("OpenBW accepted a second call")
	}
	rec.Observe(0, bwprofile.BusLogical, bwprofile.ClassPrep, 1, 2)
	rec.Observe(5, bwprofile.BusSync, bwprofile.ClassSync, 1, 2)
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bwprofile.Validate(data)
	if err != nil {
		t.Fatalf("written profile invalid: %v", err)
	}
	if rep.Experiment != "memory" || rep.Summary.Windows != 2 || rep.Summary.WindowCycles != 4 {
		t.Errorf("report = %+v, want experiment memory, 2 windows of 4 cycles", rep)
	}
	if !strings.Contains(log.String(), "bwreport") || !strings.Contains(log.String(), "window") {
		t.Errorf("Finish did not log the bw summary line:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "┤") {
		t.Errorf("Finish did not render the waveform:\n%s", log.String())
	}
}
