package obsflags

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quest/internal/metrics"
	"quest/internal/tracing"
)

// resetDefaults restores process-wide state this package mutates so tests do
// not leak into each other.
func resetDefaults() {
	tracing.Default = nil
	metrics.Default = metrics.New()
}

func TestStartRejectsBadMetricsFormat(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse([]string{"-metrics", "xml"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err == nil {
		t.Fatal("Start accepted -metrics xml")
	}
}

func TestTraceLifecycle(t *testing.T) {
	defer resetDefaults()
	path := filepath.Join(t.TempDir(), "out.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-trace", path, "-trace-buf", "1024"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	tr := o.Tracer()
	if tr == nil || tr.Capacity() != 1024 {
		t.Fatalf("tracer = %v (cap %d), want enabled with cap 1024", tr, tr.Capacity())
	}
	tr.Span("mce", 0, "busy", 0, 1)
	tr.Instant("master", 0, "dispatch", 0)
	var log bytes.Buffer
	o.Log = &log
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tracing.Validate(data)
	if err != nil {
		t.Fatalf("written trace invalid: %v", err)
	}
	if rep.Events != 2 || rep.Procs != 2 {
		t.Errorf("report = %+v, want 2 events on 2 procs", rep)
	}
	if !strings.Contains(log.String(), "trace summary") {
		t.Errorf("Finish did not print the track summary:\n%s", log.String())
	}
}

func TestMetricsServerServesPrometheusAndPprof(t *testing.T) {
	defer resetDefaults()
	resetDefaults()
	metrics.Default.Counter("master.dispatched").Add(5)
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	o.Log = io.Discard
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Finish()
	if o.ShardReg() != metrics.Default {
		t.Error("ShardReg should aggregate into Default while serving")
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + o.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "# TYPE quest_master_dispatched counter") ||
		!strings.Contains(body, "quest_master_dispatched 5") {
		t.Errorf("/metrics missing exposition:\n%s", body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestShardRegNilWhenObservabilityOff(t *testing.T) {
	defer resetDefaults()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.ShardReg() != nil {
		t.Error("ShardReg should be nil with no -metrics/-pprof")
	}
	if o.TraceEnabled() {
		t.Error("TraceEnabled with no -trace")
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if tracing.Default != nil {
		t.Error("Start enabled tracing without -trace")
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
}
