package place_test

import (
	"fmt"

	"quest/internal/compiler"
	"quest/internal/place"
)

// ExamplePlace co-locates interacting qubits so braids stay tile-local.
func ExamplePlace() {
	p := compiler.NewProgram(4)
	p.CNOT(0, 3).CNOT(0, 3).CNOT(1, 2)
	asg, err := place.Place(p, 2, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cut CNOTs:", asg.CutCNOTs)
	fmt.Println("0 and 3 share a tile:", asg.TileOf[0] == asg.TileOf[3])
	fmt.Println("1 and 2 share a tile:", asg.TileOf[1] == asg.TileOf[2])
	// Output:
	// cut CNOTs: 0
	// 0 and 3 share a tile: true
	// 1 and 2 share a tile: true
}
