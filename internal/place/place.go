// Package place implements the host's qubit-placement pass: assigning a
// program's logical qubits to MCE tiles so that braided CNOTs stay within a
// tile wherever possible. Braids are tile-local operations (a mask walk
// between two patches of one MCE); a CNOT whose operands land on different
// tiles needs the §7 cross-MCE protocol — legal but slower and
// sync-token-hungry — so the placer minimizes cut CNOTs with a greedy
// heaviest-edge clustering over the program's interaction graph.
package place

import (
	"fmt"
	"sort"

	"quest/internal/compiler"
	"quest/internal/isa"
)

// Interaction is a weighted edge of the qubit interaction graph.
type Interaction struct {
	A, B   int
	Weight int
}

// InteractionGraph counts CNOTs per qubit pair.
func InteractionGraph(p *compiler.Program) []Interaction {
	w := map[[2]int]int{}
	for _, in := range p.Instrs {
		if in.Op != isa.LCNOT {
			continue
		}
		a, b := int(in.Target), int(in.Arg)
		if a > b {
			a, b = b, a
		}
		w[[2]int{a, b}]++
	}
	out := make([]Interaction, 0, len(w))
	for k, v := range w {
		out = append(out, Interaction{A: k[0], B: k[1], Weight: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Assignment maps logical qubit → (tile, patch).
type Assignment struct {
	Tiles          int
	PatchesPerTile int
	// TileOf[q] and PatchOf[q] locate logical qubit q.
	TileOf  []int
	PatchOf []int
	// CutCNOTs counts interactions split across tiles.
	CutCNOTs int
}

// Place assigns a program's qubits to a tiles×patchesPerTile machine:
// heaviest interaction edges are merged into the same tile first (greedy
// agglomeration with capacity limits), then leftover qubits fill remaining
// slots.
func Place(p *compiler.Program, tiles, patchesPerTile int) (*Assignment, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("place: %w", err)
	}
	if tiles < 1 || patchesPerTile < 1 {
		return nil, fmt.Errorf("place: invalid machine shape %d×%d", tiles, patchesPerTile)
	}
	n := p.NumLogical
	if n > tiles*patchesPerTile {
		return nil, fmt.Errorf("place: %d logical qubits exceed %d patches", n, tiles*patchesPerTile)
	}
	edges := InteractionGraph(p)

	// Union-find clustering with capacity caps.
	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e.A), find(e.B)
		if ra == rb {
			continue
		}
		if size[ra]+size[rb] > patchesPerTile {
			continue // merging would overflow a tile
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}

	// Pack clusters into tiles, largest first (first-fit decreasing).
	clusters := map[int][]int{}
	for q := 0; q < n; q++ {
		r := find(q)
		clusters[r] = append(clusters[r], q)
	}
	var order []int
	for r := range clusters {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool {
		if len(clusters[order[i]]) != len(clusters[order[j]]) {
			return len(clusters[order[i]]) > len(clusters[order[j]])
		}
		return order[i] < order[j]
	})
	free := make([]int, tiles)
	for i := range free {
		free[i] = patchesPerTile
	}
	asg := &Assignment{
		Tiles:          tiles,
		PatchesPerTile: patchesPerTile,
		TileOf:         make([]int, n),
		PatchOf:        make([]int, n),
	}
	for _, r := range order {
		placed := false
		for t := 0; t < tiles; t++ {
			if free[t] >= len(clusters[r]) {
				for _, q := range clusters[r] {
					asg.TileOf[q] = t
					asg.PatchOf[q] = patchesPerTile - free[t]
					free[t]--
				}
				placed = true
				break
			}
		}
		if !placed {
			// Fragmentation fallback: split the cluster across any free
			// slots (its internal CNOTs become cut).
			for _, q := range clusters[r] {
				for t := 0; t < tiles; t++ {
					if free[t] > 0 {
						asg.TileOf[q] = t
						asg.PatchOf[q] = patchesPerTile - free[t]
						free[t]--
						break
					}
				}
			}
		}
	}
	for _, e := range edges {
		if asg.TileOf[e.A] != asg.TileOf[e.B] {
			asg.CutCNOTs += e.Weight
		}
	}
	return asg, nil
}

// GlobalQubit returns the machine-wide logical index the core machine's
// striped tileFor mapping expects for (tile, patch).
func (a *Assignment) GlobalQubit(q int) int {
	return a.TileOf[q]*a.PatchesPerTile + a.PatchOf[q]
}

// Remap rewrites the program's qubit operands per the assignment so that the
// machine's striped tile mapping lands each qubit on its placed tile/patch.
// Cross-tile CNOTs (CutCNOTs > 0) remain in the program; the caller decides
// whether to run them via the cross-MCE move protocol or reject.
func (a *Assignment) Remap(p *compiler.Program) (*compiler.Program, error) {
	if len(a.TileOf) < p.NumLogical {
		return nil, fmt.Errorf("place: assignment covers %d qubits, program uses %d", len(a.TileOf), p.NumLogical)
	}
	out := compiler.NewProgram(a.Tiles * a.PatchesPerTile)
	for _, in := range p.Instrs {
		m := in
		m.Target = uint8(a.GlobalQubit(int(in.Target)))
		if in.Op == isa.LCNOT {
			m.Arg = uint8(a.GlobalQubit(int(in.Arg)))
		}
		out.Instrs = append(out.Instrs, m)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("place: remap produced invalid program: %w", err)
	}
	return out, nil
}
