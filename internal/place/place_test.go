package place

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quest/internal/compiler"
	"quest/internal/core"
	"quest/internal/isa"
)

func TestInteractionGraph(t *testing.T) {
	p := compiler.NewProgram(4)
	p.CNOT(0, 1).CNOT(1, 0).CNOT(2, 3).H(0)
	g := InteractionGraph(p)
	if len(g) != 2 {
		t.Fatalf("edges = %d", len(g))
	}
	// Heaviest first: (0,1) weight 2 (direction-insensitive).
	if g[0].A != 0 || g[0].B != 1 || g[0].Weight != 2 {
		t.Errorf("edge 0 = %+v", g[0])
	}
	if g[1].Weight != 1 {
		t.Errorf("edge 1 = %+v", g[1])
	}
}

func TestPlaceCoLocatesPairs(t *testing.T) {
	// Two independent CNOT pairs, machine of 2 tiles × 2 patches: both
	// pairs must be co-located with zero cut CNOTs.
	p := compiler.NewProgram(4)
	p.CNOT(0, 2).CNOT(0, 2).CNOT(1, 3)
	asg, err := Place(p, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if asg.CutCNOTs != 0 {
		t.Fatalf("cut CNOTs = %d, want 0", asg.CutCNOTs)
	}
	if asg.TileOf[0] != asg.TileOf[2] || asg.TileOf[1] != asg.TileOf[3] {
		t.Errorf("pairs split: %v", asg.TileOf)
	}
	// Patches within a tile distinct.
	if asg.TileOf[0] == asg.TileOf[2] && asg.PatchOf[0] == asg.PatchOf[2] {
		t.Error("two qubits on one patch")
	}
}

func TestPlaceCapacityErrors(t *testing.T) {
	p := compiler.NewProgram(5)
	p.H(4)
	if _, err := Place(p, 2, 2); err == nil {
		t.Error("over-capacity placement accepted")
	}
	if _, err := Place(p, 0, 2); err == nil {
		t.Error("zero tiles accepted")
	}
	bad := compiler.NewProgram(2)
	bad.Instrs = append(bad.Instrs, isa.LogicalInstr{Op: isa.LH, Target: 9})
	if _, err := Place(bad, 2, 2); err == nil {
		t.Error("invalid program placed")
	}
}

func TestPlaceOversizedClusterFallsBack(t *testing.T) {
	// A 3-qubit interaction chain on a machine with 2-patch tiles cannot be
	// fully co-located: at least one CNOT is cut, but placement succeeds.
	p := compiler.NewProgram(3)
	p.CNOT(0, 1).CNOT(1, 2)
	asg, err := Place(p, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if asg.CutCNOTs == 0 {
		t.Error("3-chain on 2-patch tiles reported zero cuts")
	}
	if asg.CutCNOTs > 1 {
		t.Errorf("cut CNOTs = %d, want exactly 1 (the lighter edge)", asg.CutCNOTs)
	}
}

func TestRemapRunsOnMachine(t *testing.T) {
	// A program whose naive striping would put a CNOT across tiles: qubits
	// 0 and 3 interact. Placement co-locates them; the remapped program runs
	// on the machine.
	p := compiler.NewProgram(4)
	p.Prep0(0).Prep0(3).CNOT(0, 3).MeasZ(0).MeasZ(3)
	cfg := core.DefaultMachineConfig()
	cfg.Tiles = 2
	cfg.PatchesPerTile = 2
	// Naive run fails (cross-tile CNOT with striped mapping: q0→tile0,
	// q3→tile1).
	if _, err := core.NewMachine(cfg).RunProgram(p, 0); err == nil {
		t.Fatal("expected naive cross-tile CNOT to fail")
	}
	asg, err := Place(p, cfg.Tiles, cfg.PatchesPerTile)
	if err != nil {
		t.Fatal(err)
	}
	if asg.CutCNOTs != 0 {
		t.Fatalf("placement left %d cuts", asg.CutCNOTs)
	}
	mapped, err := asg.Remap(p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.NewMachine(cfg).RunProgram(mapped, 0)
	if err != nil {
		t.Fatalf("remapped program failed: %v", err)
	}
	if !rep.Drained || rep.LogicalRetired != 5 {
		t.Fatalf("drained=%v retired=%d", rep.Drained, rep.LogicalRetired)
	}
}

func TestPropertyPlacementAlwaysLegal(t *testing.T) {
	f := func(seed int64, nRaw, tRaw, pRaw uint8, ops []uint8) bool {
		tiles := 1 + int(tRaw)%4
		patches := 1 + int(pRaw)%4
		n := 1 + int(nRaw)%(tiles*patches)
		prog := compiler.NewProgram(n)
		rng := rand.New(rand.NewSource(seed))
		for _, b := range ops {
			q := int(b) % n
			if b%2 == 0 || n == 1 {
				prog.H(q)
			} else {
				prog.CNOT(q, (q+1+rng.Intn(n-1))%n)
			}
		}
		asg, err := Place(prog, tiles, patches)
		if err != nil {
			return false
		}
		// Legal: every qubit on a distinct (tile, patch) within bounds.
		seen := map[[2]int]bool{}
		for q := 0; q < n; q++ {
			tp := [2]int{asg.TileOf[q], asg.PatchOf[q]}
			if tp[0] < 0 || tp[0] >= tiles || tp[1] < 0 || tp[1] >= patches {
				return false
			}
			if seen[tp] {
				return false
			}
			seen[tp] = true
		}
		// Remap always yields a valid program.
		if _, err := asg.Remap(prog); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
