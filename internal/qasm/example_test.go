package qasm_test

import (
	"fmt"

	"quest/internal/qasm"
)

// ExampleParseString assembles a textual program and prints its shape.
func ExampleParseString() {
	p, err := qasm.ParseString(`
		prep0 q0
		h q0          ; superpose
		cnot q0, q1   # entangle
		measz q0
	`, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	text, _ := qasm.Format(p)
	fmt.Print(text)
	// Output:
	// ; 2 logical qubits, 4 instructions
	// prep0 q0
	// h q0
	// cnot q0, q1
	// measz q0
}
