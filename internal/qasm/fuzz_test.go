package qasm

import (
	"testing"
)

// FuzzParse hardens the assembler: arbitrary text must never panic, and any
// text that parses must disassemble and re-parse to the identical program
// (the parse→format fixed point).
func FuzzParse(f *testing.F) {
	f.Add("prep0 q0\nh q0\nmeasz q0\n")
	f.Add("cnot q0, q1\n")
	f.Add("; comment\nrz q0, 1.5, 1e-4\n")
	f.Add("h\n")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseString(src, 4)
		if err != nil {
			return
		}
		text, err := Format(p)
		if err != nil {
			t.Fatalf("parsed program failed to format: %v", err)
		}
		p2, err := ParseString(text, 4)
		if err != nil {
			t.Fatalf("formatted program failed to re-parse: %v\n%s", err, text)
		}
		if len(p.Instrs) != len(p2.Instrs) {
			t.Fatalf("round trip changed length: %d vs %d", len(p.Instrs), len(p2.Instrs))
		}
		for i := range p.Instrs {
			if p.Instrs[i] != p2.Instrs[i] {
				t.Fatalf("instruction %d changed across round trip", i)
			}
		}
	})
}
