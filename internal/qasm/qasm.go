// Package qasm is the textual assembly format for logical programs — the
// human-readable face of the "quantum executable" the host offloads to the
// control processor (§2.2). One instruction per line, mnemonics matching the
// logical ISA, with labels-free straight-line semantics (fault-tolerant
// programs at this layer are unrolled; control flow lives on the host).
//
// Grammar (per line, after comment stripping):
//
//	prep0 q3           ; transverse |0> preparation
//	prep+ q0
//	h q1
//	x q2 / z q2 / s q2 / t q2
//	cnot q0, q4        ; braided logical CNOT
//	measz q0 / measx q1
//	rz q2, 1.5708, 1e-6 ; host-side Clifford+T synthesis (angle, tolerance)
//	; comments run to end of line, # works too
//
// Parse errors carry line numbers. The assembler and disassembler round-trip
// (modulo comments and rz, which expands at assembly time per footnote 7 of
// the paper: rotations are decomposed before they reach the MCEs).
package qasm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"quest/internal/compiler"
	"quest/internal/isa"
)

// ParseError is a source-located assembly error.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("qasm: line %d: %s", e.Line, e.Msg) }

// Parse assembles a text program over a register of n logical qubits.
func Parse(r io.Reader, n int) (*compiler.Program, error) {
	p := compiler.NewProgram(n)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		if len(fields) == 0 {
			continue
		}
		if err := parseInstr(p, fields, lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qasm: read: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("qasm: %w", err)
	}
	return p, nil
}

func parseInstr(p *compiler.Program, fields []string, line int) (err error) {
	defer func() {
		// The program builder panics on range errors; convert to located
		// parse errors at this boundary.
		if r := recover(); r != nil {
			err = &ParseError{Line: line, Msg: fmt.Sprint(r)}
		}
	}()
	op := strings.ToLower(fields[0])
	qubit := func(idx int) (int, error) {
		if idx >= len(fields) {
			return 0, &ParseError{Line: line, Msg: fmt.Sprintf("%s: missing operand %d", op, idx)}
		}
		s := strings.TrimPrefix(strings.ToLower(fields[idx]), "q")
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, &ParseError{Line: line, Msg: fmt.Sprintf("%s: bad qubit %q", op, fields[idx])}
		}
		return v, nil
	}
	need := func(n int) error {
		if len(fields) != n {
			return &ParseError{Line: line, Msg: fmt.Sprintf("%s: want %d operands, got %d", op, n-1, len(fields)-1)}
		}
		return nil
	}
	switch op {
	case "prep0", "prep+", "prepplus", "h", "x", "z", "s", "t", "measz", "measx":
		if err := need(2); err != nil {
			return err
		}
		q, err := qubit(1)
		if err != nil {
			return err
		}
		switch op {
		case "prep0":
			p.Prep0(q)
		case "prep+", "prepplus":
			p.PrepPlus(q)
		case "h":
			p.H(q)
		case "x":
			p.X(q)
		case "z":
			p.Z(q)
		case "s":
			p.S(q)
		case "t":
			p.T(q)
		case "measz":
			p.MeasZ(q)
		case "measx":
			p.MeasX(q)
		}
	case "cnot":
		if err := need(3); err != nil {
			return err
		}
		c, err := qubit(1)
		if err != nil {
			return err
		}
		t, err := qubit(2)
		if err != nil {
			return err
		}
		p.CNOT(c, t)
	case "rz":
		if err := need(4); err != nil {
			return err
		}
		q, err := qubit(1)
		if err != nil {
			return err
		}
		theta, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return &ParseError{Line: line, Msg: fmt.Sprintf("rz: bad angle %q", fields[2])}
		}
		eps, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || eps <= 0 || eps >= 1 {
			return &ParseError{Line: line, Msg: fmt.Sprintf("rz: bad tolerance %q", fields[3])}
		}
		p.DecomposeRz(q, theta, eps)
	default:
		return &ParseError{Line: line, Msg: fmt.Sprintf("unknown mnemonic %q", op)}
	}
	return nil
}

// ParseString assembles from a string.
func ParseString(src string, n int) (*compiler.Program, error) {
	return Parse(strings.NewReader(src), n)
}

// mnemonics for disassembly, by logical opcode.
var mnemonics = map[isa.LogicalOpcode]string{
	isa.LPrep0:    "prep0",
	isa.LPrepPlus: "prep+",
	isa.LH:        "h",
	isa.LX:        "x",
	isa.LZ:        "z",
	isa.LS:        "s",
	isa.LT:        "t",
	isa.LMeasZ:    "measz",
	isa.LMeasX:    "measx",
	isa.LCNOT:     "cnot",
}

// Write disassembles a program to w in the textual format. Instructions
// without a textual mnemonic (cache/sync control plane) are rejected: they
// are runtime artifacts, not program text.
func Write(w io.Writer, p *compiler.Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; %d logical qubits, %d instructions\n", p.NumLogical, len(p.Instrs))
	for i, in := range p.Instrs {
		m, ok := mnemonics[in.Op]
		if !ok {
			return fmt.Errorf("qasm: instruction %d (%s) has no textual form", i, in.Op)
		}
		if in.Op == isa.LCNOT {
			fmt.Fprintf(bw, "%s q%d, q%d\n", m, in.Target, in.Arg)
		} else {
			fmt.Fprintf(bw, "%s q%d\n", m, in.Target)
		}
	}
	return bw.Flush()
}

// Format disassembles to a string (panics only on marshalling bugs).
func Format(p *compiler.Program) (string, error) {
	var b strings.Builder
	if err := Write(&b, p); err != nil {
		return "", err
	}
	return b.String(), nil
}
