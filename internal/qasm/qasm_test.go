package qasm

import (
	"strings"
	"testing"
	"testing/quick"

	"quest/internal/compiler"
	"quest/internal/isa"
)

const sample = `
; Bell pair with a T sprinkled in
prep0 q0
prep0 q1        ; second qubit
h q0
t q0
cnot q0, q1     # braided
measz q0
measz q1
`

func TestParseSample(t *testing.T) {
	p, err := ParseString(sample, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 7 {
		t.Fatalf("instructions = %d, want 7", len(p.Instrs))
	}
	want := []isa.LogicalOpcode{
		isa.LPrep0, isa.LPrep0, isa.LH, isa.LT, isa.LCNOT, isa.LMeasZ, isa.LMeasZ,
	}
	for i, op := range want {
		if p.Instrs[i].Op != op {
			t.Errorf("instr %d = %s, want %s", i, p.Instrs[i].Op, op)
		}
	}
	if p.Instrs[4].Target != 0 || p.Instrs[4].Arg != 1 {
		t.Errorf("cnot operands = %d,%d", p.Instrs[4].Target, p.Instrs[4].Arg)
	}
}

func TestParseAllMnemonics(t *testing.T) {
	src := `
prep0 q0
prep+ q1
prepplus q2
h q0
x q1
z q2
s q0
t q1
measx q2
measz q0
cnot q1, q2
rz q0, 3.14159, 1e-3
`
	p, err := ParseString(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCount() < 1+compiler.RzTCount(1e-3) {
		t.Errorf("rz did not expand: T count %d", p.TCount())
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src  string
		line int
		frag string
	}{
		{"h q0\nbogus q1\n", 2, "unknown mnemonic"},
		{"\n\ncnot q0\n", 3, "want 2 operands"},
		{"h qx\n", 1, "bad qubit"},
		{"h q0 q1\n", 1, "want 1 operands"},
		{"rz q0, abc, 1e-3\n", 1, "bad angle"},
		{"rz q0, 1.0, 7\n", 1, "bad tolerance"},
		{"h q99\n", 1, "outside register"},
		{"cnot q1, q1\n", 1, "control equals target"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src, 4)
		if err == nil {
			t.Errorf("%q: accepted", c.src)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("%q: error %v is not a ParseError", c.src, err)
			continue
		}
		if pe.Line != c.line {
			t.Errorf("%q: line %d, want %d", c.src, pe.Line, c.line)
		}
		if !strings.Contains(pe.Error(), c.frag) {
			t.Errorf("%q: message %q missing %q", c.src, pe.Error(), c.frag)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	p, err := ParseString("; only comments\n\n# and hashes\n   \n", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 0 {
		t.Errorf("instructions = %d", len(p.Instrs))
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := ParseString(sample, 2)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Format(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseString(text, 2)
	if err != nil {
		t.Fatalf("re-parse of disassembly failed: %v\n%s", err, text)
	}
	if len(p.Instrs) != len(p2.Instrs) {
		t.Fatalf("lengths differ: %d vs %d", len(p.Instrs), len(p2.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i] != p2.Instrs[i] {
			t.Errorf("instr %d: %v vs %v", i, p.Instrs[i], p2.Instrs[i])
		}
	}
}

func TestPropertyRandomProgramsRoundTrip(t *testing.T) {
	f := func(seedOps []uint8) bool {
		p := compiler.NewProgram(8)
		for _, b := range seedOps {
			switch b % 11 {
			case 0:
				p.Prep0(int(b) % 8)
			case 1:
				p.PrepPlus(int(b) % 8)
			case 2:
				p.H(int(b) % 8)
			case 3:
				p.X(int(b) % 8)
			case 4:
				p.Z(int(b) % 8)
			case 5:
				p.S(int(b) % 8)
			case 6:
				p.T(int(b) % 8)
			case 7:
				p.MeasZ(int(b) % 8)
			case 8:
				p.MeasX(int(b) % 8)
			default:
				a := int(b) % 8
				p.CNOT(a, (a+1)%8)
			}
		}
		text, err := Format(p)
		if err != nil {
			return false
		}
		p2, err := ParseString(text, 8)
		if err != nil || len(p2.Instrs) != len(p.Instrs) {
			return false
		}
		for i := range p.Instrs {
			if p.Instrs[i] != p2.Instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWriteRejectsControlPlane(t *testing.T) {
	p := compiler.NewProgram(2)
	p.Instrs = append(p.Instrs, isa.LogicalInstr{Op: isa.LSyncToken})
	if _, err := Format(p); err == nil {
		t.Error("sync token disassembled")
	}
}
