package qexe

import (
	"bytes"
	"testing"

	"quest/internal/compiler"
)

// FuzzDecode hardens the executable loader: arbitrary bytes must never
// panic, and any input that decodes successfully must re-encode to a
// byte-identical image (canonical form).
func FuzzDecode(f *testing.F) {
	p := compiler.NewProgram(3)
	p.Prep0(0).H(1).CNOT(0, 2).T(1).MeasZ(0)
	exe := FromProgram(p)
	exe.AddCache(1, p.Instrs)
	var seed bytes.Buffer
	if err := exe.Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("QXE1"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Encode(&out); err != nil {
			t.Fatalf("decoded executable failed to re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("decode/encode not canonical: %d vs %d bytes", out.Len(), len(data))
		}
	})
}
