// Package qexe defines the binary "quantum executable" format the host
// offloads to the control processor (§2.2): the logical program stream plus
// the pre-packaged loop bodies (distillation rounds, outer-code EC gadgets)
// destined for the MCEs' software-managed instruction caches. The cryogenic
// DRAM at 77K holds executables in this format; the master controller
// demand-streams the program section and stages the cache sections once.
//
// Layout (big-endian):
//
//	offset  size  field
//	0       4     magic "QXE1"
//	4       2     format version (currently 1)
//	6       2     logical register size
//	8       4     program instruction count P
//	12      2     cache body count B
//	14      —     B × [1 byte slot][2 bytes length L][L × 2-byte instrs]
//	...     —     P × 2-byte encoded logical instructions
//	end-4   4     CRC-32 (IEEE) of everything before it
//
// Decode verifies magic, version, CRC and instruction validity, so a
// corrupted executable is rejected before anything reaches a qubit.
package qexe

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"quest/internal/compiler"
	"quest/internal/isa"
)

// Magic identifies the format.
var Magic = [4]byte{'Q', 'X', 'E', '1'}

// Version is the current format version.
const Version = 1

// Limits guard against hostile headers.
const (
	MaxProgramInstrs = 1 << 28
	MaxCacheBodies   = 256
	MaxBodyInstrs    = 1 << 16
)

// CacheBody is one pre-packaged loop destined for an MCE cache slot.
type CacheBody struct {
	Slot int
	Body []isa.LogicalInstr
}

// Executable is the decoded form.
type Executable struct {
	NumLogical int
	Program    []isa.LogicalInstr
	Caches     []CacheBody
}

// FromProgram wraps a compiled program (no cache sections).
func FromProgram(p *compiler.Program) *Executable {
	return &Executable{NumLogical: p.NumLogical, Program: append([]isa.LogicalInstr(nil), p.Instrs...)}
}

// AddCache appends a cache section.
func (e *Executable) AddCache(slot int, body []isa.LogicalInstr) {
	e.Caches = append(e.Caches, CacheBody{Slot: slot, Body: append([]isa.LogicalInstr(nil), body...)})
}

// Validate checks structural invariants before encoding.
func (e *Executable) Validate() error {
	if e.NumLogical < 1 || e.NumLogical > 64 {
		return fmt.Errorf("qexe: register size %d outside [1,64]", e.NumLogical)
	}
	if len(e.Program) > MaxProgramInstrs {
		return fmt.Errorf("qexe: program too large (%d instrs)", len(e.Program))
	}
	if len(e.Caches) > MaxCacheBodies {
		return fmt.Errorf("qexe: too many cache bodies (%d)", len(e.Caches))
	}
	for i, c := range e.Caches {
		if c.Slot < 0 || c.Slot > 255 {
			return fmt.Errorf("qexe: cache %d slot %d outside [0,255]", i, c.Slot)
		}
		if len(c.Body) == 0 || len(c.Body) > MaxBodyInstrs {
			return fmt.Errorf("qexe: cache %d body size %d invalid", i, len(c.Body))
		}
	}
	return nil
}

// Encode serializes the executable.
func (e *Executable) Encode(w io.Writer) error {
	if err := e.Validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(Magic[:])
	write16 := func(v int) { binary.Write(&buf, binary.BigEndian, uint16(v)) }
	write32 := func(v int) { binary.Write(&buf, binary.BigEndian, uint32(v)) }
	write16(Version)
	write16(e.NumLogical)
	write32(len(e.Program))
	write16(len(e.Caches))
	for _, c := range e.Caches {
		buf.WriteByte(byte(c.Slot))
		write16(len(c.Body))
		for _, in := range c.Body {
			enc := in.Encode()
			buf.Write(enc[:])
		}
	}
	for _, in := range e.Program {
		enc := in.Encode()
		buf.Write(enc[:])
	}
	binary.Write(&buf, binary.BigEndian, crc32.ChecksumIEEE(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

// EncodedSize returns the byte size Encode will produce.
func (e *Executable) EncodedSize() int {
	n := 4 + 2 + 2 + 4 + 2
	for _, c := range e.Caches {
		n += 1 + 2 + len(c.Body)*isa.LogicalInstrBytes
	}
	n += len(e.Program)*isa.LogicalInstrBytes + 4
	return n
}

// Decode parses and verifies an executable.
func Decode(r io.Reader) (*Executable, error) {
	raw, err := io.ReadAll(io.LimitReader(r, int64(MaxProgramInstrs)*4))
	if err != nil {
		return nil, fmt.Errorf("qexe: read: %w", err)
	}
	if len(raw) < 4+2+2+4+2+4 {
		return nil, fmt.Errorf("qexe: truncated (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:4], Magic[:]) {
		return nil, fmt.Errorf("qexe: bad magic %q", raw[:4])
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("qexe: CRC mismatch")
	}
	cur := raw[4:]
	read16 := func() int {
		v := int(binary.BigEndian.Uint16(cur))
		cur = cur[2:]
		return v
	}
	if v := read16(); v != Version {
		return nil, fmt.Errorf("qexe: unsupported version %d", v)
	}
	e := &Executable{NumLogical: read16()}
	progCount := int(binary.BigEndian.Uint32(cur))
	cur = cur[4:]
	cacheCount := read16()
	if progCount > MaxProgramInstrs || cacheCount > MaxCacheBodies {
		return nil, fmt.Errorf("qexe: implausible header (%d instrs, %d caches)", progCount, cacheCount)
	}
	readInstrs := func(n int) ([]isa.LogicalInstr, error) {
		need := n * isa.LogicalInstrBytes
		if len(cur) < need+4 { // +4: trailing CRC must remain
			return nil, fmt.Errorf("qexe: truncated instruction section")
		}
		out := make([]isa.LogicalInstr, n)
		for i := range out {
			var w [isa.LogicalInstrBytes]byte
			copy(w[:], cur[:2])
			cur = cur[2:]
			in, err := isa.DecodeLogical(w)
			if err != nil {
				return nil, fmt.Errorf("qexe: instruction %d: %w", i, err)
			}
			out[i] = in
		}
		return out, nil
	}
	for b := 0; b < cacheCount; b++ {
		if len(cur) < 3+4 {
			return nil, fmt.Errorf("qexe: truncated cache header")
		}
		slot := int(cur[0])
		cur = cur[1:]
		length := read16()
		if length == 0 || length > MaxBodyInstrs {
			return nil, fmt.Errorf("qexe: cache %d length %d invalid", b, length)
		}
		instrs, err := readInstrs(length)
		if err != nil {
			return nil, err
		}
		e.Caches = append(e.Caches, CacheBody{Slot: slot, Body: instrs})
	}
	prog, err := readInstrs(progCount)
	if err != nil {
		return nil, err
	}
	e.Program = prog
	if len(cur) != 4 {
		return nil, fmt.Errorf("qexe: %d trailing bytes", len(cur)-4)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// ToProgram converts the program section back into the compiler IR.
func (e *Executable) ToProgram() (*compiler.Program, error) {
	p := compiler.NewProgram(e.NumLogical)
	p.Instrs = append(p.Instrs, e.Program...)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("qexe: %w", err)
	}
	return p, nil
}

// Summary returns a human-readable description of the executable — what
// `questasm info` prints.
func (e *Executable) Summary() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "quantum executable (qexe v%d)\n", Version)
	fmt.Fprintf(&b, "  logical register: %d qubits\n", e.NumLogical)
	fmt.Fprintf(&b, "  program section:  %d instructions (%d bytes on the bus)\n",
		len(e.Program), len(e.Program)*isa.LogicalInstrBytes)
	tCount := 0
	for _, in := range e.Program {
		if in.Op == isa.LT {
			tCount++
		}
	}
	fmt.Fprintf(&b, "  T gates:          %d\n", tCount)
	for _, c := range e.Caches {
		fmt.Fprintf(&b, "  cache section:    slot %d, %d instructions (shipped once)\n", c.Slot, len(c.Body))
	}
	fmt.Fprintf(&b, "  encoded size:     %d bytes\n", e.EncodedSize())
	return b.String()
}
