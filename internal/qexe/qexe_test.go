package qexe

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"quest/internal/compiler"
	"quest/internal/distill"
	"quest/internal/isa"
)

func sampleExe(t *testing.T) *Executable {
	t.Helper()
	p := compiler.NewProgram(4)
	p.Prep0(0).H(0).CNOT(0, 1).T(2).MeasZ(0).MeasX(3)
	e := FromProgram(p)
	e.AddCache(0, distill.RoundCircuit())
	e.AddCache(3, []isa.LogicalInstr{{Op: isa.LX, Target: 1}, {Op: isa.LZ, Target: 0}})
	return e
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := sampleExe(t)
	var buf bytes.Buffer
	if err := e.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != e.EncodedSize() {
		t.Errorf("EncodedSize = %d, wrote %d", e.EncodedSize(), buf.Len())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLogical != e.NumLogical || len(got.Program) != len(e.Program) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range e.Program {
		if got.Program[i] != e.Program[i] {
			t.Fatalf("program instr %d differs", i)
		}
	}
	if len(got.Caches) != 2 || got.Caches[0].Slot != 0 || got.Caches[1].Slot != 3 {
		t.Fatalf("caches: %+v", got.Caches)
	}
	for i := range e.Caches[0].Body {
		if got.Caches[0].Body[i] != e.Caches[0].Body[i] {
			t.Fatalf("cache body instr %d differs", i)
		}
	}
	// Back to IR.
	p2, err := got.ToProgram()
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Instrs) != len(e.Program) {
		t.Error("ToProgram lost instructions")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	e := sampleExe(t)
	var buf bytes.Buffer
	if err := e.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	// Flip every byte position in turn: decode must never succeed with a
	// wrong payload and must never panic (the CRC or validators catch it).
	for i := 0; i < len(pristine); i++ {
		mut := append([]byte(nil), pristine...)
		mut[i] ^= 0x41
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			// A flip in the CRC itself that collides is impossible with a
			// single-byte XOR; any success is a bug.
			t.Fatalf("byte %d: corrupted executable accepted", i)
		}
	}
	// Truncations at every length.
	for n := 0; n < len(pristine); n += 7 {
		if _, err := Decode(bytes.NewReader(pristine[:n])); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		junk := make([]byte, n)
		rng.Read(junk)
		if _, err := Decode(bytes.NewReader(junk)); err == nil {
			t.Fatalf("trial %d: random %d bytes decoded", trial, n)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []*Executable{
		{NumLogical: 0},
		{NumLogical: 100},
		{NumLogical: 2, Caches: []CacheBody{{Slot: -1, Body: []isa.LogicalInstr{{}}}}},
		{NumLogical: 2, Caches: []CacheBody{{Slot: 0}}}, // empty body
	}
	for i, e := range cases {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		var buf bytes.Buffer
		if err := e.Encode(&buf); err == nil {
			t.Errorf("case %d encoded", i)
		}
	}
}

func TestVersionAndMagicChecks(t *testing.T) {
	e := sampleExe(t)
	var buf bytes.Buffer
	if err := e.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	bad := append([]byte(nil), raw...)
	copy(bad[:4], "NOPE")
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestPropertyProgramsRoundTrip(t *testing.T) {
	f := func(ops []uint8, nRaw uint8) bool {
		n := 1 + int(nRaw)%64
		p := compiler.NewProgram(n)
		for _, b := range ops {
			q := int(b) % n
			switch b % 5 {
			case 0:
				p.Prep0(q)
			case 1:
				p.H(q)
			case 2:
				p.T(q)
			case 3:
				p.MeasZ(q)
			default:
				if n > 1 {
					p.CNOT(q, (q+1)%n)
				} else {
					p.X(q)
				}
			}
		}
		var buf bytes.Buffer
		if err := FromProgram(p).Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || got.NumLogical != n || len(got.Program) != len(p.Instrs) {
			return false
		}
		for i := range p.Instrs {
			if got.Program[i] != p.Instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	e := sampleExe(t)
	s := e.Summary()
	for _, frag := range []string{
		"4 qubits", "6 instructions", "T gates:          1",
		"slot 0, 106 instructions", "slot 3, 2 instructions",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}
