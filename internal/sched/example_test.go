package sched_test

import (
	"fmt"

	"quest/internal/compiler"
	"quest/internal/sched"
)

// ExampleSchedule computes the ILP of a small program: two independent
// chains parallelize, the braid serializes its two qubits.
func ExampleSchedule() {
	p := compiler.NewProgram(4)
	p.H(0).H(1).H(2).H(3) // one parallel wave
	p.CNOT(0, 1)          // braid: occupies q0,q1 for CNOTLatency slots
	p.H(2).H(3)           // meanwhile the other chain continues
	res, err := sched.Schedule(p, sched.Config{Width: 4, CNOTLatency: 3, TLatency: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("makespan:", res.Makespan, "slots")
	fmt.Println("critical path:", res.CriticalPath)
	fmt.Printf("ILP: %.1f\n", res.ILP)
	// Output:
	// makespan: 4 slots
	// critical path: 4
	// ILP: 2.2
}
