// Package sched implements the master controller's logical instruction
// scheduler: dependency analysis over a logical program and list scheduling
// under an issue-width constraint. The paper's bandwidth model leans on the
// empirical observation that "most quantum workloads execute only two to
// three logical instructions in parallel" (§5.2) — this package computes
// that instruction-level parallelism for concrete programs, along with the
// makespan and critical path that size the run-time estimates.
package sched

import (
	"fmt"

	"quest/internal/compiler"
	"quest/internal/isa"
)

// Config sets scheduling parameters.
type Config struct {
	// Width is the issue width (parallel logical instructions per slot).
	Width int
	// CNOTLatency is the slot count a braided CNOT occupies its qubits
	// (braids are multi-cycle; transverse ops take one slot).
	CNOTLatency int
	// TLatency is the slot count a T gate occupies (magic-state injection).
	TLatency int
}

// DefaultConfig mirrors the paper's assumptions: modest issue width, braids
// costing about a code distance of rounds relative to transverse ops.
func DefaultConfig() Config { return Config{Width: 4, CNOTLatency: 3, TLatency: 2} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width < 1 {
		return fmt.Errorf("sched: width %d < 1", c.Width)
	}
	if c.CNOTLatency < 1 || c.TLatency < 1 {
		return fmt.Errorf("sched: non-positive latencies %d/%d", c.CNOTLatency, c.TLatency)
	}
	return nil
}

func (c Config) latency(in isa.LogicalInstr) int {
	switch in.Op {
	case isa.LCNOT:
		return c.CNOTLatency
	case isa.LT:
		return c.TLatency
	default:
		return 1
	}
}

// Result is a computed schedule.
type Result struct {
	// Slot[i] is the issue slot of instruction i.
	Slot []int
	// Makespan is the total slot count.
	Makespan int
	// CriticalPath is the dependence-limited lower bound (infinite width).
	CriticalPath int
	// ILP is the achieved parallelism: total instruction-slots of work over
	// the makespan.
	ILP float64
}

// qubitsOf lists the logical qubits an instruction touches.
func qubitsOf(in isa.LogicalInstr) []int {
	if in.Op == isa.LCNOT {
		return []int{int(in.Target), int(in.Arg)}
	}
	return []int{int(in.Target)}
}

// Schedule list-schedules the program: each instruction issues at the
// earliest slot after all prior instructions touching its qubits have
// finished, subject to at most Width issues per slot. Program order is
// preserved per qubit (the hardware's per-patch serialization).
func Schedule(p *compiler.Program, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.Instrs)
	res := Result{Slot: make([]int, n)}
	qubitFree := make(map[int]int) // qubit -> first free slot
	issued := make(map[int]int)    // slot -> issue count
	work := 0
	for i, in := range p.Instrs {
		lat := cfg.latency(in)
		work += lat
		ready := 0
		for _, q := range qubitsOf(in) {
			if f := qubitFree[q]; f > ready {
				ready = f
			}
		}
		slot := ready
		for issued[slot] >= cfg.Width {
			slot++
		}
		issued[slot]++
		res.Slot[i] = slot
		for _, q := range qubitsOf(in) {
			qubitFree[q] = slot + lat
		}
		if end := slot + lat; end > res.Makespan {
			res.Makespan = end
		}
	}
	res.CriticalPath = criticalPath(p, cfg)
	if res.Makespan > 0 {
		res.ILP = float64(work) / float64(res.Makespan)
	}
	return res, nil
}

// criticalPath computes the dependence-limited makespan (infinite width).
func criticalPath(p *compiler.Program, cfg Config) int {
	qubitFree := make(map[int]int)
	cp := 0
	for _, in := range p.Instrs {
		lat := cfg.latency(in)
		ready := 0
		for _, q := range qubitsOf(in) {
			if f := qubitFree[q]; f > ready {
				ready = f
			}
		}
		end := ready + lat
		for _, q := range qubitsOf(in) {
			qubitFree[q] = end
		}
		if end > cp {
			cp = end
		}
	}
	return cp
}

// Validate checks a computed schedule against the program: dependencies
// respected, width respected. Used by tests and as a debugging assertion.
func (r Result) Validate(p *compiler.Program, cfg Config) error {
	if len(r.Slot) != len(p.Instrs) {
		return fmt.Errorf("sched: slot count %d != instruction count %d", len(r.Slot), len(p.Instrs))
	}
	issued := map[int]int{}
	lastEnd := map[int]int{}
	for i, in := range p.Instrs {
		s := r.Slot[i]
		issued[s]++
		if issued[s] > cfg.Width {
			return fmt.Errorf("sched: slot %d over width", s)
		}
		for _, q := range qubitsOf(in) {
			if s < lastEnd[q] {
				return fmt.Errorf("sched: instruction %d issues at %d before qubit %d frees at %d",
					i, s, q, lastEnd[q])
			}
			lastEnd[q] = s + cfg.latency(in)
		}
	}
	return nil
}
