package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quest/internal/compiler"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	for _, c := range []Config{{Width: 0, CNOTLatency: 1, TLatency: 1}, {Width: 1, TLatency: 1}, {Width: 1, CNOTLatency: 1}} {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestChainIsSerial(t *testing.T) {
	// A dependency chain on one qubit cannot parallelize.
	p := compiler.NewProgram(1)
	for i := 0; i < 10; i++ {
		p.H(0)
	}
	r, err := Schedule(p, Config{Width: 8, CNOTLatency: 3, TLatency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 10 || r.CriticalPath != 10 {
		t.Errorf("makespan/cp = %d/%d, want 10/10", r.Makespan, r.CriticalPath)
	}
	if r.ILP != 1 {
		t.Errorf("ILP = %v, want 1", r.ILP)
	}
	if err := r.Validate(p, Config{Width: 8, CNOTLatency: 3, TLatency: 2}); err != nil {
		t.Error(err)
	}
}

func TestIndependentOpsFillWidth(t *testing.T) {
	p := compiler.NewProgram(8)
	for q := 0; q < 8; q++ {
		p.H(q)
	}
	cfg := Config{Width: 4, CNOTLatency: 3, TLatency: 2}
	r, err := Schedule(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 2 {
		t.Errorf("makespan = %d, want 2 (8 ops at width 4)", r.Makespan)
	}
	if r.ILP != 4 {
		t.Errorf("ILP = %v, want 4", r.ILP)
	}
	if r.CriticalPath != 1 {
		t.Errorf("critical path = %d, want 1", r.CriticalPath)
	}
}

func TestCNOTLatencySerializesBothQubits(t *testing.T) {
	p := compiler.NewProgram(2)
	p.CNOT(0, 1).H(0).H(1)
	cfg := Config{Width: 4, CNOTLatency: 5, TLatency: 2}
	r, err := Schedule(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Slot[1] != 5 || r.Slot[2] != 5 {
		t.Errorf("post-braid ops at slots %d,%d, want 5,5", r.Slot[1], r.Slot[2])
	}
	if err := r.Validate(p, cfg); err != nil {
		t.Error(err)
	}
}

func TestPaperILPBand(t *testing.T) {
	// A random circuit in the style the paper's workloads exhibit (frequent
	// cross-qubit dependencies, every third-ish gate a T) lands in the 2-3
	// parallel instruction band at realistic width.
	rng := rand.New(rand.NewSource(4))
	p := compiler.NewProgram(7)
	for i := 0; i < 600; i++ {
		q := rng.Intn(7)
		switch i % 3 {
		case 0:
			p.T(q)
		case 1:
			p.H(q)
		default:
			p.CNOT(q, (q+1+rng.Intn(6))%7)
		}
	}
	r, err := Schedule(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.ILP < 2 || r.ILP > 3.5 {
		t.Errorf("achieved ILP %.2f outside the paper's 2-3 band", r.ILP)
	}
}

func TestScheduleRejectsInvalidInputs(t *testing.T) {
	p := compiler.NewProgram(2)
	p.H(0)
	if _, err := Schedule(p, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	bad := compiler.NewProgram(2)
	bad.Instrs = append(bad.Instrs, p.Instrs[0])
	bad.Instrs[0].Target = 9
	if _, err := Schedule(bad, DefaultConfig()); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestValidateCatchesBrokenSchedules(t *testing.T) {
	p := compiler.NewProgram(2)
	p.H(0).H(0)
	cfg := Config{Width: 1, CNOTLatency: 1, TLatency: 1}
	r, _ := Schedule(p, cfg)
	r.Slot[1] = 0 // violate both dependency and width
	if err := r.Validate(p, cfg); err == nil {
		t.Error("broken schedule validated")
	}
	short := Result{Slot: []int{0}}
	if err := short.Validate(p, cfg); err == nil {
		t.Error("truncated schedule validated")
	}
}

// TestPropertyScheduleAlwaysValid: any random program yields a schedule that
// passes validation, with makespan ≥ critical path and ≥ ceil(work/width).
func TestPropertyScheduleAlwaysValid(t *testing.T) {
	cfg := DefaultConfig()
	f := func(ops []uint8, widthRaw uint8) bool {
		c := cfg
		c.Width = 1 + int(widthRaw)%8
		p := compiler.NewProgram(10)
		for _, b := range ops {
			q := int(b) % 10
			switch b % 4 {
			case 0:
				p.H(q)
			case 1:
				p.T(q)
			case 2:
				p.X(q)
			default:
				p.CNOT(q, (q+1)%10)
			}
		}
		r, err := Schedule(p, c)
		if err != nil {
			return false
		}
		if err := r.Validate(p, c); err != nil {
			return false
		}
		if r.Makespan < r.CriticalPath {
			return false
		}
		if len(p.Instrs) > 0 && r.Makespan < (len(p.Instrs)+c.Width-1)/c.Width {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
