package surface_test

import (
	"fmt"

	"quest/internal/surface"
)

// ExampleNewPlanar shows the distance-3 planar patch — the paper's Figure 17
// unit cell is the same 25-qubit layout.
func ExampleNewPlanar() {
	lat := surface.NewPlanar(3)
	fmt.Print(lat)
	fmt.Println("data qubits:", len(lat.Qubits(surface.RoleData)))
	// Output:
	// DXDXD
	// ZDZDZ
	// DXDXD
	// ZDZDZ
	// DXDXD
	// data qubits: 13
}

// ExampleCompileCycle compiles one Steane-style QECC cycle: nine lock-step
// sub-cycles, one µop per qubit each.
func ExampleCompileCycle() {
	lat := surface.NewPlanar(3)
	words := surface.CompileCycle(lat, surface.Steane, nil)
	fmt.Println("sub-cycles:", len(words))
	fmt.Println("µops per sub-cycle:", words[0].Len())
	fmt.Println("total µops per cycle:", len(words)*words[0].Len())
	// Output:
	// sub-cycles: 9
	// µops per sub-cycle: 25
	// total µops per cycle: 225
}

// ExampleBuildCellTable shows the unit-cell microcode: a constant-size table
// that regenerates the full stream for any lattice.
func ExampleBuildCellTable() {
	table := surface.BuildCellTable(surface.Steane)
	small := surface.NewLattice(5, 5)
	big := surface.NewLattice(11, 21)
	fmt.Println("table entries (lattice-independent):", table.NumEntries())
	fmt.Println("drives 25-qubit tile:", len(table.Expand(small, nil)) == surface.Steane.Depth)
	fmt.Println("drives 231-qubit tile:", len(table.Expand(big, nil)) == surface.Steane.Depth)
	// Output:
	// table entries (lattice-independent): 128
	// drives 25-qubit tile: true
	// drives 231-qubit tile: true
}

// ExampleNewRotated shows the SC-17 code: the distance-3 rotated surface
// code with 17 qubits.
func ExampleNewRotated() {
	r := surface.NewRotated(3)
	fmt.Println("data:", r.NumData(), "ancillas:", r.NumAncillas(), "total:", r.NumQubits())
	fmt.Println("schedule depth:", len(r.CompileRotatedCycle()))
	// Output:
	// data: 9 ancillas: 8 total: 17
	// schedule depth: 8
}
