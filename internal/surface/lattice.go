// Package surface implements the surface-code quantum error correction layer
// described in Appendix A of the paper: a two-dimensional lattice of data and
// ancillary qubits, the repeating 5×5 unit cell, syndrome-generation
// schedules (Steane, Shor, SC-17, SC-13), the QECC mask that carves logical
// qubits out of the lattice, and the compilation of one QECC cycle into the
// lock-step VLIW physical instruction stream the control processor must
// deliver.
package surface

import "fmt"

// Role classifies a lattice site.
type Role uint8

// Lattice site roles. Data qubits carry encoded information; X ancillas
// detect bit flips via X-syndromes; Z ancillas detect phase flips via
// Z-syndromes.
const (
	RoleData Role = iota
	RoleAncillaX
	RoleAncillaZ
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleData:
		return "data"
	case RoleAncillaX:
		return "ancX"
	case RoleAncillaZ:
		return "ancZ"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Lattice is a rectangular patch of the surface-code qubit array. Sites are
// addressed by (row, col); the flat qubit index is row*Cols + col. Site
// parity fixes the role: (row+col) even sites are data qubits; odd sites are
// ancillas, X-type on even rows and Z-type on odd rows. This is the layout of
// the paper's Figure 17: a 5×5 patch holds 13 data and 12 ancilla qubits.
type Lattice struct {
	Rows, Cols int
}

// NewPlanar returns the lattice of a distance-d planar surface code: a
// (2d-1)×(2d-1) patch with d² data qubits and d²-1 ancillas.
func NewPlanar(d int) Lattice {
	if d < 2 {
		panic(fmt.Sprintf("surface: code distance %d < 2", d))
	}
	return Lattice{Rows: 2*d - 1, Cols: 2*d - 1}
}

// NewLattice returns a general rows×cols patch (used for MCE tiles that hold
// several logical qubits).
func NewLattice(rows, cols int) Lattice {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("surface: invalid lattice %dx%d", rows, cols))
	}
	return Lattice{Rows: rows, Cols: cols}
}

// NumQubits returns the total number of physical qubits in the patch.
func (l Lattice) NumQubits() int { return l.Rows * l.Cols }

// Index converts (row, col) to the flat qubit index.
func (l Lattice) Index(r, c int) int {
	if !l.InBounds(r, c) {
		panic(fmt.Sprintf("surface: site (%d,%d) outside %dx%d lattice", r, c, l.Rows, l.Cols))
	}
	return r*l.Cols + c
}

// Coord converts a flat qubit index back to (row, col).
func (l Lattice) Coord(i int) (r, c int) {
	if i < 0 || i >= l.NumQubits() {
		panic(fmt.Sprintf("surface: qubit index %d outside lattice", i))
	}
	return i / l.Cols, i % l.Cols
}

// InBounds reports whether (r,c) is a site of the patch.
func (l Lattice) InBounds(r, c int) bool {
	return r >= 0 && r < l.Rows && c >= 0 && c < l.Cols
}

// RoleAt returns the role of site (r,c).
func (l Lattice) RoleAt(r, c int) Role {
	if (r+c)%2 == 0 {
		return RoleData
	}
	if r%2 == 0 {
		return RoleAncillaX
	}
	return RoleAncillaZ
}

// RoleOf returns the role of a flat qubit index.
func (l Lattice) RoleOf(i int) Role {
	r, c := l.Coord(i)
	return l.RoleAt(r, c)
}

// dirOffsets are the four syndrome-CNOT directions in the order used by the
// schedule tables: North, East, West, South.
var dirOffsets = [4][2]int{{-1, 0}, {0, 1}, {0, -1}, {1, 0}}

// Neighbor returns the flat index of the site one step in direction dir
// (0=N, 1=E, 2=W, 3=S) from (r,c), or -1 if it falls off the patch.
func (l Lattice) Neighbor(r, c, dir int) int {
	nr, nc := r+dirOffsets[dir][0], c+dirOffsets[dir][1]
	if !l.InBounds(nr, nc) {
		return -1
	}
	return l.Index(nr, nc)
}

// Qubits returns the flat indices of all sites with the given role, in index
// order.
func (l Lattice) Qubits(role Role) []int {
	var out []int
	for i := 0; i < l.NumQubits(); i++ {
		if l.RoleOf(i) == role {
			out = append(out, i)
		}
	}
	return out
}

// StabilizerSupport returns the data-qubit flat indices that the ancilla at
// flat index a checks, in N,E,W,S order (boundary ancillas return fewer).
func (l Lattice) StabilizerSupport(a int) []int {
	r, c := l.Coord(a)
	if l.RoleAt(r, c) == RoleData {
		panic(fmt.Sprintf("surface: qubit %d is not an ancilla", a))
	}
	var out []int
	for dir := 0; dir < 4; dir++ {
		if n := l.Neighbor(r, c, dir); n >= 0 {
			out = append(out, n)
		}
	}
	return out
}

// LogicalZ returns the data-qubit support of the planar-code logical Z
// operator: the top row of data qubits. Only meaningful for NewPlanar
// lattices.
func (l Lattice) LogicalZ() []int {
	var out []int
	for c := 0; c < l.Cols; c += 2 {
		out = append(out, l.Index(0, c))
	}
	return out
}

// LogicalX returns the data-qubit support of the planar-code logical X
// operator: the left column of data qubits.
func (l Lattice) LogicalX() []int {
	var out []int
	for r := 0; r < l.Rows; r += 2 {
		out = append(out, l.Index(r, 0))
	}
	return out
}

// Distance returns the code distance of a planar patch (min lattice
// dimension +1 over 2).
func (l Lattice) Distance() int {
	m := l.Rows
	if l.Cols < m {
		m = l.Cols
	}
	return (m + 1) / 2
}

// String renders the patch as an ASCII role map (D = data, X/Z = ancillas),
// used by examples and debugging.
func (l Lattice) String() string {
	buf := make([]byte, 0, (l.Cols+1)*l.Rows)
	for r := 0; r < l.Rows; r++ {
		for c := 0; c < l.Cols; c++ {
			switch l.RoleAt(r, c) {
			case RoleData:
				buf = append(buf, 'D')
			case RoleAncillaX:
				buf = append(buf, 'X')
			case RoleAncillaZ:
				buf = append(buf, 'Z')
			}
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}

// UnitCell is the spatial period of the syndrome-generation instruction
// pattern. The paper works with a 5×5-qubit unit cell (Figure 17); the
// underlying translational period of the µop pattern is 2×2 sites, which is
// what the microcode replay state machine exploits. UnitCellQubits is the
// paper's accounting granularity.
const (
	UnitCellQubits = 25
	UnitCellPeriod = 2
)
