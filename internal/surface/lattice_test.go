package surface

import (
	"strings"
	"testing"
)

func TestPlanarLatticeCounts(t *testing.T) {
	cases := []struct{ d, data, ancX, ancZ int }{
		{2, 4, 0, 0}, // filled below
		{3, 13, 6, 6},
		{5, 41, 20, 20},
		{7, 85, 42, 42},
	}
	// d=2: 3x3 grid, 5 data, 2+2 ancillas.
	cases[0] = struct{ d, data, ancX, ancZ int }{2, 5, 2, 2}
	for _, c := range cases {
		l := NewPlanar(c.d)
		if got := len(l.Qubits(RoleData)); got != c.data {
			t.Errorf("d=%d: data qubits = %d, want %d", c.d, got, c.data)
		}
		if got := len(l.Qubits(RoleAncillaX)); got != c.ancX {
			t.Errorf("d=%d: X ancillas = %d, want %d", c.d, got, c.ancX)
		}
		if got := len(l.Qubits(RoleAncillaZ)); got != c.ancZ {
			t.Errorf("d=%d: Z ancillas = %d, want %d", c.d, got, c.ancZ)
		}
		if got := l.NumQubits(); got != c.data+c.ancX+c.ancZ {
			t.Errorf("d=%d: NumQubits = %d inconsistent", c.d, got)
		}
		if got := l.Distance(); got != c.d {
			t.Errorf("d=%d: Distance() = %d", c.d, got)
		}
	}
}

func TestFigure17UnitCell(t *testing.T) {
	// The paper's 5×5 unit cell: 13 data, 12 ancilla qubits.
	l := NewLattice(5, 5)
	if got := len(l.Qubits(RoleData)); got != 13 {
		t.Errorf("5x5 data qubits = %d, want 13", got)
	}
	anc := len(l.Qubits(RoleAncillaX)) + len(l.Qubits(RoleAncillaZ))
	if anc != 12 {
		t.Errorf("5x5 ancillas = %d, want 12", anc)
	}
	if l.NumQubits() != UnitCellQubits {
		t.Errorf("unit cell qubits = %d, want %d", l.NumQubits(), UnitCellQubits)
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	l := NewLattice(7, 9)
	for i := 0; i < l.NumQubits(); i++ {
		r, c := l.Coord(i)
		if l.Index(r, c) != i {
			t.Fatalf("round trip failed for %d -> (%d,%d)", i, r, c)
		}
	}
}

func TestPanics(t *testing.T) {
	expect := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	l := NewPlanar(3)
	expect("distance 1", func() { NewPlanar(1) })
	expect("bad lattice", func() { NewLattice(0, 5) })
	expect("index oob", func() { l.Index(9, 0) })
	expect("coord oob", func() { l.Coord(999) })
	expect("support of data", func() { l.StabilizerSupport(l.Index(0, 0)) })
}

func TestNeighborBoundaries(t *testing.T) {
	l := NewPlanar(3) // 5x5
	if l.Neighbor(0, 0, 0) != -1 {
		t.Error("north of top row should be -1")
	}
	if l.Neighbor(0, 0, 2) != -1 {
		t.Error("west of left col should be -1")
	}
	if got := l.Neighbor(2, 2, 1); got != l.Index(2, 3) {
		t.Errorf("east neighbor = %d", got)
	}
	if got := l.Neighbor(2, 2, 3); got != l.Index(3, 2) {
		t.Errorf("south neighbor = %d", got)
	}
}

func TestStabilizerSupportSizes(t *testing.T) {
	l := NewPlanar(5)
	for _, role := range []Role{RoleAncillaX, RoleAncillaZ} {
		for _, a := range l.Qubits(role) {
			sup := l.StabilizerSupport(a)
			if len(sup) < 2 || len(sup) > 4 {
				t.Errorf("ancilla %d support size %d outside [2,4]", a, len(sup))
			}
			for _, q := range sup {
				if l.RoleOf(q) != RoleData {
					t.Errorf("ancilla %d support contains non-data qubit %d (%s)", a, q, l.RoleOf(q))
				}
			}
		}
	}
	// Interior ancillas have exactly 4.
	interior := l.Index(2, 1)
	if got := len(l.StabilizerSupport(interior)); got != 4 {
		t.Errorf("interior ancilla support = %d, want 4", got)
	}
}

func TestLogicalOperatorsCommuteWithStabilizers(t *testing.T) {
	// Logical Z must overlap every X stabilizer an even number of times, and
	// logical X every Z stabilizer an even number of times; and they must
	// anticommute with each other (odd overlap).
	for _, d := range []int{2, 3, 5, 7} {
		l := NewPlanar(d)
		lz := toSet(l.LogicalZ())
		lx := toSet(l.LogicalX())
		if len(lz) != d || len(lx) != d {
			t.Errorf("d=%d: logical weights |Z|=%d |X|=%d, want %d", d, len(lz), len(lx), d)
		}
		for _, a := range l.Qubits(RoleAncillaX) {
			if overlap(l.StabilizerSupport(a), lz)%2 != 0 {
				t.Errorf("d=%d: logical Z anticommutes with X stabilizer %d", d, a)
			}
		}
		for _, a := range l.Qubits(RoleAncillaZ) {
			if overlap(l.StabilizerSupport(a), lx)%2 != 0 {
				t.Errorf("d=%d: logical X anticommutes with Z stabilizer %d", d, a)
			}
		}
		common := 0
		for q := range lz {
			if lx[q] {
				common++
			}
		}
		if common%2 != 1 {
			t.Errorf("d=%d: logical X and Z overlap %d times, want odd", d, common)
		}
	}
}

func toSet(qs []int) map[int]bool {
	s := make(map[int]bool, len(qs))
	for _, q := range qs {
		s[q] = true
	}
	return s
}

func overlap(qs []int, s map[int]bool) int {
	n := 0
	for _, q := range qs {
		if s[q] {
			n++
		}
	}
	return n
}

func TestStringRoleMap(t *testing.T) {
	l := NewLattice(3, 3)
	got := l.String()
	want := "DXD\nZDZ\nDXD\n"
	if got != want {
		t.Errorf("role map:\n%s\nwant:\n%s", got, want)
	}
	if !strings.Contains(RoleData.String(), "data") {
		t.Error("RoleData name")
	}
}

func TestPhysicalCostFormulas(t *testing.T) {
	if got := PhysicalQubitsPerLogical(10); got != 1250 {
		t.Errorf("12.5d² at d=10 = %v", got)
	}
	if got := PatchQubitsPerLogical(10); got != 2100 {
		t.Errorf("7d×3d at d=10 = %v", got)
	}
}
