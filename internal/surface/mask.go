package surface

import "fmt"

// Mask is the QECC mask of a lattice patch: one bit per qubit saying whether
// the microcode pipeline should replace that qubit's QECC µop with a logical
// µop (or idle). Logical qubits are created by masking the ancillas inside
// and on the perimeter of square regions (paper §5.1, Figure 12); braiding
// grows, moves and shrinks those regions.
//
// The mask is the mask-table contents of an MCE. Its raw size is N bits; for
// surface codes the paper coalesces it to N/d² bits because logical
// operations act at d² granularity — CoalescedBits computes that reduction.
type Mask struct {
	lat      Lattice
	disabled []bool
	version  uint64 // bumped on every mutation; lets caches detect staleness
}

// NewMask returns an all-enabled (no logical qubits) mask for the lattice.
func NewMask(lat Lattice) *Mask {
	return &Mask{lat: lat, disabled: make([]bool, lat.NumQubits())}
}

// Lattice returns the lattice the mask covers.
func (m *Mask) Lattice() Lattice { return m.lat }

// Version returns a counter that increments on every mutation.
func (m *Mask) Version() uint64 { return m.version }

// Disabled reports whether QECC is masked off for qubit i.
func (m *Mask) Disabled(i int) bool { return m.disabled[i] }

// SetDisabled sets the mask bit for one qubit.
func (m *Mask) SetDisabled(i int, v bool) {
	if m.disabled[i] != v {
		m.disabled[i] = v
		m.version++
	}
}

// DisabledCount returns the number of masked qubits.
func (m *Mask) DisabledCount() int {
	n := 0
	for _, d := range m.disabled {
		if d {
			n++
		}
	}
	return n
}

// SetRegion masks (v=true) or unmasks (v=false) every qubit in the inclusive
// rectangle [r0,r1]×[c0,c1].
func (m *Mask) SetRegion(r0, c0, r1, c1 int, v bool) {
	if r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("surface: inverted mask region (%d,%d)-(%d,%d)", r0, c0, r1, c1))
	}
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			if m.lat.InBounds(r, c) {
				m.SetDisabled(m.lat.Index(r, c), v)
			}
		}
	}
}

// Clone returns an independent copy of the mask.
func (m *Mask) Clone() *Mask {
	c := &Mask{lat: m.lat, disabled: append([]bool(nil), m.disabled...), version: m.version}
	return c
}

// Equal reports whether two masks select identical qubit sets.
func (m *Mask) Equal(o *Mask) bool {
	if m.lat != o.lat {
		return false
	}
	for i, d := range m.disabled {
		if d != o.disabled[i] {
			return false
		}
	}
	return true
}

// RawBits returns the uncoalesced mask-table size in bits (one per qubit).
func (m *Mask) RawBits() int { return m.lat.NumQubits() }

// CoalescedBits returns the mask-table size when one bit covers a d×d-site
// block (the paper's N/d² optimization: logical instructions operate at d²
// physical-qubit granularity, so per-qubit mask bits are redundant).
func (m *Mask) CoalescedBits(d int) int {
	if d < 1 {
		panic(fmt.Sprintf("surface: coalescing distance %d < 1", d))
	}
	blocksR := (m.lat.Rows + d - 1) / d
	blocksC := (m.lat.Cols + d - 1) / d
	return blocksR * blocksC
}

// Defect is a masked square region that, paired with a partner, encodes one
// defect-based logical qubit (paper Figure 12b: two masked squares of side d
// separated by d data qubits).
type Defect struct {
	R, C int // top-left site of the masked square
	Side int // square side in sites
}

// Region returns the inclusive rectangle of the defect.
func (d Defect) Region() (r0, c0, r1, c1 int) {
	return d.R, d.C, d.R + d.Side - 1, d.C + d.Side - 1
}

// LogicalQubit is a defect pair carved into a lattice patch.
type LogicalQubit struct {
	A, B Defect
}

// NewLogicalQubit places a defect pair for one logical qubit with code
// distance d: two (d)×(d)-site squares at (r,c) and (r, c+2d), matching the
// paper's spacing rule of d data qubits between masks.
func NewLogicalQubit(lat Lattice, r, c, d int) (LogicalQubit, error) {
	lq := LogicalQubit{
		A: Defect{R: r, C: c, Side: d},
		B: Defect{R: r, C: c + 2*d, Side: d},
	}
	for _, df := range []Defect{lq.A, lq.B} {
		r0, c0, r1, c1 := df.Region()
		if !lat.InBounds(r0, c0) || !lat.InBounds(r1, c1) {
			return LogicalQubit{}, fmt.Errorf("surface: defect (%d,%d) side %d outside %dx%d lattice",
				df.R, df.C, df.Side, lat.Rows, lat.Cols)
		}
	}
	return lq, nil
}

// Apply masks both defects on m.
func (lq LogicalQubit) Apply(m *Mask) {
	for _, df := range []Defect{lq.A, lq.B} {
		r0, c0, r1, c1 := df.Region()
		m.SetRegion(r0, c0, r1, c1, true)
	}
}

// Remove unmasks both defects on m.
func (lq LogicalQubit) Remove(m *Mask) {
	for _, df := range []Defect{lq.A, lq.B} {
		r0, c0, r1, c1 := df.Region()
		m.SetRegion(r0, c0, r1, c1, false)
	}
}

// PhysicalQubits returns the count of physical qubits a defect-pair logical
// qubit occupies under the paper's appendix-M costing: 12.5·d² per logical
// qubit (the two masked squares, their perimeters and separation).
func PhysicalQubitsPerLogical(d int) float64 { return 12.5 * float64(d) * float64(d) }

// PatchQubitsPerLogical returns the QuRE-style 7d×3d patch size the paper's
// evaluations use so that parallel braids never require moving logical
// qubits (§6.2).
func PatchQubitsPerLogical(d int) int { return 7 * d * 3 * d }

// BraidStep is one mask mutation along a braid path.
type BraidStep struct {
	// Grow extends the mask to cover this site; otherwise the step shrinks
	// the mask back off this site.
	Grow bool
	R, C int
}

// BraidPath returns the mask-instruction walk that braids defect A of lq
// around a pivot site and back — an L-shaped out-and-return path of grow
// steps followed by matching shrink steps, which is the mask-table activity
// pattern of a logical CNOT (paper Figure 12c). The path runs from the east
// edge of defect A horizontally to pivot column, then vertically to pivot
// row.
func BraidPath(lq LogicalQubit, pivotR, pivotC int) []BraidStep {
	startR := lq.A.R + lq.A.Side/2
	startC := lq.A.C + lq.A.Side
	var out []BraidStep
	c := startC
	for ; c != pivotC; c += sign(pivotC - c) {
		out = append(out, BraidStep{Grow: true, R: startR, C: c})
	}
	for r := startR; r != pivotR; r += sign(pivotR - r) {
		out = append(out, BraidStep{Grow: true, R: r, C: c})
	}
	// Return: shrink in reverse order, restoring the original mask.
	n := len(out)
	for i := n - 1; i >= 0; i-- {
		out = append(out, BraidStep{Grow: false, R: out[i].R, C: out[i].C})
	}
	return out
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// RenderMask draws the lattice with the mask overlaid: masked sites print
// '#', active sites print their role (D, x, z). Used by examples and
// debugging output to visualize defects and braids (Figure 12).
func RenderMask(lat Lattice, m *Mask) string {
	buf := make([]byte, 0, (lat.Cols+1)*lat.Rows)
	for r := 0; r < lat.Rows; r++ {
		for c := 0; c < lat.Cols; c++ {
			i := lat.Index(r, c)
			switch {
			case m != nil && m.Disabled(i):
				buf = append(buf, '#')
			case lat.RoleAt(r, c) == RoleData:
				buf = append(buf, 'D')
			case lat.RoleAt(r, c) == RoleAncillaX:
				buf = append(buf, 'x')
			default:
				buf = append(buf, 'z')
			}
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}

// ApplyBraidStep mutates the mask for one braid step. It returns an error if
// the step addresses a site outside the lattice, or if a grow step lands on
// an already-masked site — braid paths must route around other defects, and
// silently merging with one would corrupt the partner logical qubit when the
// return path shrinks back.
func ApplyBraidStep(m *Mask, s BraidStep) error {
	if !m.lat.InBounds(s.R, s.C) {
		return fmt.Errorf("surface: braid step at (%d,%d) outside lattice", s.R, s.C)
	}
	i := m.lat.Index(s.R, s.C)
	if s.Grow && m.Disabled(i) {
		return fmt.Errorf("surface: braid grow at (%d,%d) collides with an existing defect", s.R, s.C)
	}
	m.SetDisabled(i, s.Grow)
	return nil
}
