package surface

import "testing"

func TestMaskBasics(t *testing.T) {
	lat := NewPlanar(3)
	m := NewMask(lat)
	if m.DisabledCount() != 0 {
		t.Error("fresh mask disables qubits")
	}
	if m.RawBits() != lat.NumQubits() {
		t.Errorf("RawBits = %d, want %d", m.RawBits(), lat.NumQubits())
	}
	m.SetDisabled(3, true)
	if !m.Disabled(3) || m.DisabledCount() != 1 {
		t.Error("SetDisabled had no effect")
	}
	v := m.Version()
	m.SetDisabled(3, true) // idempotent: version must not bump
	if m.Version() != v {
		t.Error("idempotent set bumped version")
	}
	m.SetDisabled(3, false)
	if m.Version() == v || m.Disabled(3) {
		t.Error("unset failed")
	}
}

func TestMaskRegionClipsToLattice(t *testing.T) {
	lat := NewPlanar(3) // 5x5
	m := NewMask(lat)
	m.SetRegion(3, 3, 10, 10, true) // extends past the edge
	want := 0
	for r := 3; r < 5; r++ {
		for c := 3; c < 5; c++ {
			want++
		}
	}
	if got := m.DisabledCount(); got != want {
		t.Errorf("clipped region disabled %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("inverted region accepted")
		}
	}()
	m.SetRegion(2, 2, 1, 1, true)
}

func TestMaskCloneAndEqual(t *testing.T) {
	lat := NewPlanar(3)
	a := NewMask(lat)
	a.SetRegion(0, 0, 1, 1, true)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.SetDisabled(20, true)
	if a.Equal(b) {
		t.Error("diverged masks equal")
	}
	if a.Disabled(20) {
		t.Error("clone shares storage")
	}
	other := NewMask(NewPlanar(5))
	if a.Equal(other) {
		t.Error("masks on different lattices equal")
	}
}

func TestCoalescedBits(t *testing.T) {
	lat := NewLattice(25, 25) // 625 qubits
	m := NewMask(lat)
	if got := m.CoalescedBits(5); got != 25 {
		t.Errorf("coalesced bits = %d, want 25 (N/d²)", got)
	}
	if got := m.CoalescedBits(1); got != 625 {
		t.Errorf("d=1 coalescing = %d, want 625", got)
	}
	// Non-divisible dimensions round up.
	m2 := NewMask(NewLattice(7, 7))
	if got := m2.CoalescedBits(5); got != 4 {
		t.Errorf("7x7 d=5 coalesced = %d, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("d=0 accepted")
		}
	}()
	m.CoalescedBits(0)
}

func TestLogicalQubitPlacement(t *testing.T) {
	lat := NewLattice(15, 25)
	lq, err := NewLogicalQubit(lat, 2, 2, 3)
	if err != nil {
		t.Fatalf("placement failed: %v", err)
	}
	m := NewMask(lat)
	lq.Apply(m)
	// Two 3x3 squares => 18 masked qubits.
	if got := m.DisabledCount(); got != 18 {
		t.Errorf("defect pair masked %d qubits, want 18", got)
	}
	// Separation: region B starts at c+2d = 8.
	if lq.B.C != 8 {
		t.Errorf("partner defect at col %d, want 8", lq.B.C)
	}
	lq.Remove(m)
	if m.DisabledCount() != 0 {
		t.Error("Remove left masked qubits")
	}
	if _, err := NewLogicalQubit(lat, 2, 20, 3); err == nil {
		t.Error("defect pair overflowing lattice accepted")
	}
}

func TestBraidPathOutAndReturn(t *testing.T) {
	lat := NewLattice(15, 25)
	lq, err := NewLogicalQubit(lat, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMask(lat)
	lq.Apply(m)
	before := m.Clone()
	path := BraidPath(lq, 9, 6) // pivot routed clear of defect B (cols 8-10)
	if len(path)%2 != 0 {
		t.Fatalf("braid path length %d not even (out+return)", len(path))
	}
	grow := 0
	for _, s := range path {
		if s.Grow {
			grow++
		}
		if err := ApplyBraidStep(m, s); err != nil {
			t.Fatalf("braid step failed: %v", err)
		}
	}
	if grow != len(path)/2 {
		t.Errorf("grow steps = %d, want half of %d", grow, len(path))
	}
	if !m.Equal(before) {
		t.Error("completed braid did not restore the mask")
	}
	// Mid-braid the mask must differ from the rest state.
	m2 := before.Clone()
	for _, s := range path[:len(path)/2] {
		if err := ApplyBraidStep(m2, s); err != nil {
			t.Fatal(err)
		}
	}
	if m2.Equal(before) {
		t.Error("outbound braid left mask unchanged")
	}
	if err := ApplyBraidStep(m, BraidStep{Grow: true, R: 99, C: 0}); err == nil {
		t.Error("out-of-lattice braid step accepted")
	}
}

func TestBraidPathDegenerate(t *testing.T) {
	lat := NewLattice(15, 25)
	lq, _ := NewLogicalQubit(lat, 2, 2, 3)
	// Pivot at the path start: empty path.
	path := BraidPath(lq, lq.A.R+lq.A.Side/2, lq.A.C+lq.A.Side)
	if len(path) != 0 {
		t.Errorf("degenerate braid has %d steps, want 0", len(path))
	}
}

func TestRenderMask(t *testing.T) {
	lat := NewLattice(3, 3)
	m := NewMask(lat)
	m.SetDisabled(lat.Index(1, 1), true)
	got := RenderMask(lat, m)
	want := "DxD\nz#z\nDxD\n"
	if got != want {
		t.Errorf("render:\n%q\nwant:\n%q", got, want)
	}
	// nil mask renders the plain role map.
	if got := RenderMask(lat, nil); got != "DxD\nzDz\nDxD\n" {
		t.Errorf("nil-mask render: %q", got)
	}
}
