package surface

import (
	"fmt"

	"quest/internal/isa"
)

// SiteKind classifies one noise-injection site of a compiled sub-cycle: the
// channel an execution unit's Fire loop would draw from at that position.
// The order of sites within a word is the order Fire visits them (ascending
// qubit index, two-qubit draws at the control position), which is exactly
// what lets a batched engine replay an Injector's RNG stream bit-for-bit
// without a tableau.
type SiteKind uint8

// The injection channels of the extraction circuit, in awg dispatch terms.
const (
	// SiteIdle is a decoherence draw on an idle qubit.
	SiteIdle SiteKind = iota
	// SitePrep is a preparation-error draw after Prep0/PrepPlus.
	SitePrep
	// SiteGate2 is a two-qubit depolarizing draw after a CNOT, taken at the
	// control qubit's position.
	SiteGate2
	// SiteMeas is a classical measurement-flip draw.
	SiteMeas
)

// NoiseSite is one injection site: which channel, on which qubit, and (for
// two-qubit draws) the partner the second Pauli lands on.
type NoiseSite struct {
	Kind  SiteKind
	Qubit int
	// Pair is the CNOT target for SiteGate2, -1 otherwise.
	Pair int
	// BasisX selects the preparation basis for SitePrep (|+> vs |0>), which
	// decides whether the prep fault is a Z or an X.
	BasisX bool
}

// MeasOp is one ancilla measurement of a sub-cycle.
type MeasOp struct {
	Qubit int
	IsX   bool
}

// PrepOp is one ancilla preparation of a sub-cycle.
type PrepOp struct {
	Qubit  int
	BasisX bool
}

// CNOTOp is one CNOT of a sub-cycle, recorded once (at the control).
type CNOTOp struct {
	Control, Target int
}

// ProgramWord is the decomposition of one VLIW sub-cycle into the phases a
// Pauli-frame propagator needs: measurements read the current frame, preps
// reset it, CNOTs conjugate it, and Sites lists every noise draw in Fire
// order. Because every qubit carries exactly one µop per word, the phases
// commute with the interleaved per-qubit execution order of the AWG unit —
// no gate in a word can move a fault injected by another site of the same
// word.
type ProgramWord struct {
	Meas  []MeasOp
	Preps []PrepOp
	CNOTs []CNOTOp
	Sites []NoiseSite
}

// ExtractionProgram is the schedule precompute of one QECC cycle: the
// per-word phase lists a batched Monte-Carlo engine propagates faults
// through, compiled once per cell instead of re-simulated per trial.
type ExtractionProgram struct {
	NumQubits int
	Words     []ProgramWord
}

// BuildProgram decomposes a compiled cycle (CompileCycle output) into an
// ExtractionProgram. It accepts only the µops the extraction circuit uses —
// idles, preps, CNOT pairs and measurements — and panics on anything else,
// because silently skipping an op would desynchronize the RNG replay.
func BuildProgram(lat Lattice, words []isa.VLIW) *ExtractionProgram {
	prog := &ExtractionProgram{NumQubits: lat.NumQubits(), Words: make([]ProgramWord, len(words))}
	for s, w := range words {
		pw := &prog.Words[s]
		for q, op := range w.Ops {
			switch op {
			case isa.OpIdle:
				pw.Sites = append(pw.Sites, NoiseSite{Kind: SiteIdle, Qubit: q, Pair: -1})
			case isa.OpPrep0, isa.OpPrep1:
				pw.Preps = append(pw.Preps, PrepOp{Qubit: q, BasisX: false})
				pw.Sites = append(pw.Sites, NoiseSite{Kind: SitePrep, Qubit: q, Pair: -1})
			case isa.OpPrepPlus:
				pw.Preps = append(pw.Preps, PrepOp{Qubit: q, BasisX: true})
				pw.Sites = append(pw.Sites, NoiseSite{Kind: SitePrep, Qubit: q, Pair: -1, BasisX: true})
			case isa.OpMeasZ:
				pw.Meas = append(pw.Meas, MeasOp{Qubit: q})
				pw.Sites = append(pw.Sites, NoiseSite{Kind: SiteMeas, Qubit: q, Pair: -1})
			case isa.OpMeasX:
				pw.Meas = append(pw.Meas, MeasOp{Qubit: q, IsX: true})
				pw.Sites = append(pw.Sites, NoiseSite{Kind: SiteMeas, Qubit: q, Pair: -1})
			case isa.OpCNOTControl:
				p := w.Pairs[q]
				pw.CNOTs = append(pw.CNOTs, CNOTOp{Control: q, Target: p})
				pw.Sites = append(pw.Sites, NoiseSite{Kind: SiteGate2, Qubit: q, Pair: p})
			case isa.OpCNOTTarget:
				// Executed (and drawn) from the control side.
			default:
				panic(fmt.Sprintf("surface: µop %v at qubit %d is not part of an extraction cycle", op, q))
			}
		}
	}
	return prog
}
