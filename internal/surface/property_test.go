package surface

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quest/internal/isa"
)

// TestPropertyCompileAlwaysValid: for any lattice shape and any random mask,
// every compiled word passes structural validation and covers every qubit.
func TestPropertyCompileAlwaysValid(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rows := 1 + int(rRaw)%12
		cols := 1 + int(cRaw)%12
		lat := NewLattice(rows, cols)
		rng := rand.New(rand.NewSource(seed))
		mask := NewMask(lat)
		for i := 0; i < lat.NumQubits(); i++ {
			if rng.Intn(3) == 0 {
				mask.SetDisabled(i, true)
			}
		}
		for _, sched := range []Schedule{Steane, Shor} {
			words := CompileCycle(lat, sched, mask)
			if len(words) != sched.Depth {
				return false
			}
			for _, w := range words {
				if w.Len() != lat.NumQubits() {
					return false
				}
				if err := w.Validate(); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUnitCellUniversality: the unit-cell replay equals direct
// compilation on arbitrary lattice shapes and masks — the O(1) microcode
// claim, fuzzed.
func TestPropertyUnitCellUniversality(t *testing.T) {
	table := BuildCellTable(Steane)
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rows := 1 + int(rRaw)%14
		cols := 1 + int(cRaw)%14
		lat := NewLattice(rows, cols)
		rng := rand.New(rand.NewSource(seed))
		mask := NewMask(lat)
		for i := 0; i < lat.NumQubits(); i++ {
			if rng.Intn(4) == 0 {
				mask.SetDisabled(i, true)
			}
		}
		direct := CompileCycle(lat, Steane, mask)
		replayed := table.Expand(lat, mask)
		for s := range direct {
			if !direct[s].Equal(replayed[s]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMaskRegionCounts: after masking a clipped region, the disabled
// count equals the region's intersection with the lattice; unmasking
// restores zero.
func TestPropertyMaskRegionCounts(t *testing.T) {
	f := func(r0Raw, c0Raw, hRaw, wRaw uint8) bool {
		lat := NewLattice(9, 9)
		m := NewMask(lat)
		r0 := int(r0Raw) % 12
		c0 := int(c0Raw) % 12
		r1 := r0 + int(hRaw)%6
		c1 := c0 + int(wRaw)%6
		m.SetRegion(r0, c0, r1, c1, true)
		want := 0
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				if lat.InBounds(r, c) {
					want++
				}
			}
		}
		if m.DisabledCount() != want {
			return false
		}
		m.SetRegion(r0, c0, r1, c1, false)
		return m.DisabledCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEveryQubitEveryCycle: the lock-step invariant — no word ever
// leaves a qubit without a µop (idle is explicit, nil is impossible), and
// measurement ops appear exactly once per unmasked ancilla per cycle.
func TestPropertyEveryQubitEveryCycle(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		d := 2 + int(dRaw)%4
		lat := NewPlanar(d)
		words := CompileCycle(lat, Steane, nil)
		meas := make(map[int]int)
		for _, w := range words {
			for q, op := range w.Ops {
				if !op.Valid() {
					return false
				}
				if op.IsMeasurement() {
					meas[q]++
				}
			}
		}
		for _, role := range []Role{RoleAncillaX, RoleAncillaZ} {
			for _, a := range lat.Qubits(role) {
				if meas[a] != 1 {
					return false
				}
			}
		}
		for _, dq := range lat.Qubits(RoleData) {
			if meas[dq] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	_ = isa.OpIdle
}
