package surface

// The paper stresses that the QECC portion of the microcode is programmable
// (§4.4: "the choice of QECC is flexible"). These tests demonstrate it: the
// identical schedule compiler, unit-cell table and replay machinery run a
// completely different code — the phase-flip repetition code — simply by
// programming a 1×N lattice. Nothing in the pipeline is surface-code
// specific beyond the pattern table contents.

import (
	"math/rand"
	"testing"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/isa"
)

// repLattice returns the 1×(2n-1) lattice of an n-qubit phase-flip
// repetition code: data qubits at even columns, X-type parity checks between
// them.
func repLattice(n int) Lattice { return NewLattice(1, 2*n-1) }

func TestRepetitionLatticeRoles(t *testing.T) {
	lat := repLattice(5)
	if got := len(lat.Qubits(RoleData)); got != 5 {
		t.Fatalf("data qubits = %d, want 5", got)
	}
	if got := len(lat.Qubits(RoleAncillaX)); got != 4 {
		t.Fatalf("X checks = %d, want 4", got)
	}
	if got := len(lat.Qubits(RoleAncillaZ)); got != 0 {
		t.Fatalf("Z checks = %d, want 0 (repetition code has one check type)", got)
	}
	for _, a := range lat.Qubits(RoleAncillaX) {
		if got := len(lat.StabilizerSupport(a)); got != 2 {
			t.Errorf("check %d support = %d, want 2", a, got)
		}
	}
}

func TestRepetitionCompilesOnStandardPipeline(t *testing.T) {
	lat := repLattice(4)
	words := CompileCycle(lat, Steane, nil)
	for s, w := range words {
		if err := w.Validate(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	// The unit-cell replay must match direct compilation here too — the
	// programmability claim in executable form.
	table := BuildCellTable(Steane)
	replayed := table.Expand(lat, nil)
	for s := range words {
		if !words[s].Equal(replayed[s]) {
			t.Fatalf("step %d: unit-cell replay diverges on the repetition code", s)
		}
	}
}

func TestRepetitionDetectsPhaseFlips(t *testing.T) {
	lat := repLattice(5)
	words := CompileCycle(lat, Steane, nil)
	for _, victim := range lat.Qubits(RoleData) {
		tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(int64(victim))))
		u := awg.New(tb, nil)
		run := func() map[int]int {
			synd := make(map[int]int)
			u.MeasSink = func(q, bit int) { synd[q] = bit }
			for _, w := range words {
				u.ExecuteWord(w)
			}
			return synd
		}
		run()
		base := run()
		tb.ApplyPauli(victim, clifford.PauliZ)
		after := run()
		r, c := lat.Coord(victim)
		wantFlips := map[int]bool{}
		for _, dir := range []int{1, 2} { // E, W
			if n := lat.Neighbor(r, c, dir); n >= 0 {
				wantFlips[n] = true
			}
		}
		for a := range base {
			if (base[a] != after[a]) != wantFlips[a] {
				t.Errorf("victim %d: check %d flip mismatch", victim, a)
			}
		}
	}
}

func TestRepetitionIgnoresBitFlips(t *testing.T) {
	// The phase-flip code cannot see X errors — its checks are X-type.
	lat := repLattice(4)
	words := CompileCycle(lat, Steane, nil)
	tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(1)))
	u := awg.New(tb, nil)
	run := func() map[int]int {
		synd := make(map[int]int)
		u.MeasSink = func(q, bit int) { synd[q] = bit }
		for _, w := range words {
			u.ExecuteWord(w)
		}
		return synd
	}
	run()
	base := run()
	tb.ApplyPauli(lat.Index(0, 2), clifford.PauliX)
	after := run()
	for a := range base {
		if base[a] != after[a] {
			t.Errorf("X error visible to X-type check %d — not a phase-flip code", a)
		}
	}
}

func TestRepetitionMicrocodeFootprintTiny(t *testing.T) {
	// A different code, same O(1) microcode: the pattern table stays
	// constant-size and fits the smallest JJ bank.
	table := BuildCellTable(Steane)
	if table.NumEntries() != 128 {
		t.Errorf("entries = %d", table.NumEntries())
	}
	// And the per-cycle stream still covers every qubit every sub-cycle.
	lat := repLattice(8)
	words := table.Expand(lat, nil)
	if len(words) != Steane.Depth {
		t.Fatalf("depth = %d", len(words))
	}
	for _, w := range words {
		if w.Len() != lat.NumQubits() {
			t.Fatal("stream width wrong")
		}
	}
	_ = isa.OpIdle
}
