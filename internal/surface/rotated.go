package surface

import (
	"fmt"

	"quest/internal/isa"
)

// This file implements the *rotated* surface code of Tomita & Svore — the
// SC-17 and SC-13 designs of the paper's Table 2 and Figure 16. A rotated
// distance-d code uses d² data qubits and d²-1 stabilizers (SC-17 is the
// d=3 instance: 9 data + 8 ancillas = 17 qubits), roughly halving the qubit
// cost of the unrotated layout at the same distance. Its syndrome schedule
// is shallower (8 sub-cycles) because the weight-4/weight-2 checks interleave
// tighter; that is why SC-17 tops the Figure 16 throughput ranking.

// RotatedLattice is a rotated surface code patch of distance d. Data qubits
// live on a d×d grid; X- and Z-type ancillas sit on the dual grid between
// them, in a checkerboard, with weight-2 checks on alternating boundary
// faces.
type RotatedLattice struct {
	D int
	// ancillas: position on the (d+1)×(d+1) dual grid, with parity deciding
	// presence and type.
	ancs []rotAncilla
}

type rotAncilla struct {
	r, c int // dual-grid coordinates, 0..d
	isX  bool
	// support: data qubit indices (row*d+col), 2 or 4 of them.
	support []int
}

// NewRotated builds a rotated code of odd distance d ≥ 3.
func NewRotated(d int) *RotatedLattice {
	if d < 3 || d%2 == 0 {
		panic(fmt.Sprintf("surface: rotated distance %d must be odd ≥ 3", d))
	}
	lat := &RotatedLattice{D: d}
	for r := 0; r <= d; r++ {
		for c := 0; c <= d; c++ {
			// A plaquette at dual position (r,c) covers data qubits
			// (r-1..r, c-1..c) clipped to the grid.
			var sup []int
			for dr := -1; dr <= 0; dr++ {
				for dc := -1; dc <= 0; dc++ {
					rr, cc := r+dr, c+dc
					if rr >= 0 && rr < d && cc >= 0 && cc < d {
						sup = append(sup, rr*d+cc)
					}
				}
			}
			if len(sup) == 0 {
				continue
			}
			isX := (r+c)%2 == 0
			switch len(sup) {
			case 4:
				// interior: keep all
			case 2:
				// Boundary faces: X-type checks live only on the
				// north/south boundaries, Z-type only on west/east — that
				// asymmetry is what gives the code its distance.
				if isX && !(r == 0 || r == d) {
					continue
				}
				if !isX && !(c == 0 || c == d) {
					continue
				}
			default:
				continue // corners with 1 data qubit host no check
			}
			lat.ancs = append(lat.ancs, rotAncilla{r: r, c: c, isX: isX, support: sup})
		}
	}
	return lat
}

// NumData returns d².
func (l *RotatedLattice) NumData() int { return l.D * l.D }

// NumAncillas returns the stabilizer count (d²-1 for a valid construction).
func (l *RotatedLattice) NumAncillas() int { return len(l.ancs) }

// NumQubits returns the total qubit count (17 for d=3: the SC-17 code).
func (l *RotatedLattice) NumQubits() int { return l.NumData() + l.NumAncillas() }

// AncillaQubit returns the flat qubit index of ancilla i (ancillas are
// numbered after the data block).
func (l *RotatedLattice) AncillaQubit(i int) int { return l.NumData() + i }

// AncillaIsX reports the type of ancilla i.
func (l *RotatedLattice) AncillaIsX(i int) bool { return l.ancs[i].isX }

// Support returns the data-qubit indices ancilla i checks.
func (l *RotatedLattice) Support(i int) []int {
	return append([]int(nil), l.ancs[i].support...)
}

// LogicalZ returns the logical-Z support: the top row of data qubits (a
// Z-chain crossing between the X boundaries).
func (l *RotatedLattice) LogicalZ() []int {
	out := make([]int, l.D)
	for c := 0; c < l.D; c++ {
		out[c] = c
	}
	return out
}

// LogicalX returns the logical-X support: the left column of data qubits.
func (l *RotatedLattice) LogicalX() []int {
	out := make([]int, l.D)
	for r := 0; r < l.D; r++ {
		out[r] = r * l.D
	}
	return out
}

// rotDepth is the rotated schedule depth: prep, four CNOT rounds, measure,
// and two idle pads to match SC-17's 8-instruction cycle.
const rotDepth = 8

// CompileRotatedCycle emits the rotated code's QECC cycle as lock-step VLIW
// words over NumQubits qubits. The CNOT order follows the standard rotated-
// code "N"-shaped dance: X-ancillas touch their support in (NW, NE, SW, SE)
// order and Z-ancillas in (NW, SW, NE, SE), which keeps simultaneously
// measured checks commuting through shared data qubits.
func (l *RotatedLattice) CompileRotatedCycle() []isa.VLIW {
	n := l.NumQubits()
	words := make([]isa.VLIW, rotDepth)
	for s := range words {
		words[s] = isa.NewVLIW(n)
	}
	for i, a := range l.ancs {
		aq := l.AncillaQubit(i)
		if a.isX {
			words[0].Set(aq, isa.OpPrepPlus)
			words[5].Set(aq, isa.OpMeasX)
		} else {
			words[0].Set(aq, isa.OpPrep0)
			words[5].Set(aq, isa.OpMeasZ)
		}
		for k, dq := range l.orderedSupport(a) {
			if dq < 0 {
				continue
			}
			step := 1 + k
			if a.isX {
				words[step].SetPair(aq, isa.OpCNOTControl, dq)
				words[step].SetPair(dq, isa.OpCNOTTarget, aq)
			} else {
				words[step].SetPair(dq, isa.OpCNOTControl, aq)
				words[step].SetPair(aq, isa.OpCNOTTarget, dq)
			}
		}
	}
	return words
}

// orderedSupport returns the ancilla's support in its four scheduled slots
// (-1 for absent corners): X-ancillas dance NW,NE,SW,SE; Z-ancillas
// NW,SW,NE,SE.
func (l *RotatedLattice) orderedSupport(a rotAncilla) [4]int {
	at := func(dr, dc int) int {
		rr, cc := a.r+dr, a.c+dc
		if rr < 0 || rr >= l.D || cc < 0 || cc >= l.D {
			return -1
		}
		return rr*l.D + cc
	}
	nw, ne, sw, se := at(-1, -1), at(-1, 0), at(0, -1), at(0, 0)
	if a.isX {
		return [4]int{nw, ne, sw, se}
	}
	return [4]int{nw, sw, ne, se}
}
