package surface

import (
	"math/rand"
	"testing"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/isa"
)

func TestRotatedQubitCounts(t *testing.T) {
	// SC-17 is the d=3 rotated code: 9 data + 8 ancillas.
	r3 := NewRotated(3)
	if r3.NumData() != 9 || r3.NumAncillas() != 8 || r3.NumQubits() != 17 {
		t.Fatalf("d=3 rotated: %d data, %d ancillas, %d total — want 9/8/17",
			r3.NumData(), r3.NumAncillas(), r3.NumQubits())
	}
	// d² - 1 stabilizers for any valid distance.
	for _, d := range []int{3, 5, 7} {
		r := NewRotated(d)
		if r.NumAncillas() != d*d-1 {
			t.Errorf("d=%d: %d ancillas, want %d", d, r.NumAncillas(), d*d-1)
		}
		nx, nz := 0, 0
		for i := 0; i < r.NumAncillas(); i++ {
			if r.AncillaIsX(i) {
				nx++
			} else {
				nz++
			}
			sup := r.Support(i)
			if len(sup) != 2 && len(sup) != 4 {
				t.Errorf("d=%d ancilla %d: support %d", d, i, len(sup))
			}
		}
		if nx != nz {
			t.Errorf("d=%d: %d X vs %d Z checks, want equal", d, nx, nz)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("even distance accepted")
		}
	}()
	NewRotated(4)
}

func TestRotatedStabilizersCommute(t *testing.T) {
	// Every X check must overlap every Z check on an even number of data
	// qubits — the CSS condition.
	for _, d := range []int{3, 5} {
		r := NewRotated(d)
		for i := 0; i < r.NumAncillas(); i++ {
			if !r.AncillaIsX(i) {
				continue
			}
			si := map[int]bool{}
			for _, q := range r.Support(i) {
				si[q] = true
			}
			for j := 0; j < r.NumAncillas(); j++ {
				if r.AncillaIsX(j) {
					continue
				}
				overlap := 0
				for _, q := range r.Support(j) {
					if si[q] {
						overlap++
					}
				}
				if overlap%2 != 0 {
					t.Fatalf("d=%d: checks %d,%d overlap %d", d, i, j, overlap)
				}
			}
		}
	}
}

func TestRotatedLogicalOperators(t *testing.T) {
	for _, d := range []int{3, 5} {
		r := NewRotated(d)
		lz := map[int]bool{}
		for _, q := range r.LogicalZ() {
			lz[q] = true
		}
		lx := map[int]bool{}
		for _, q := range r.LogicalX() {
			lx[q] = true
		}
		for i := 0; i < r.NumAncillas(); i++ {
			overlap := func(set map[int]bool) int {
				n := 0
				for _, q := range r.Support(i) {
					if set[q] {
						n++
					}
				}
				return n
			}
			if r.AncillaIsX(i) && overlap(lz)%2 != 0 {
				t.Errorf("d=%d: logical Z anticommutes with X check %d", d, i)
			}
			if !r.AncillaIsX(i) && overlap(lx)%2 != 0 {
				t.Errorf("d=%d: logical X anticommutes with Z check %d", d, i)
			}
		}
		// Logical X and Z anticommute (odd overlap).
		common := 0
		for q := range lz {
			if lx[q] {
				common++
			}
		}
		if common%2 != 1 {
			t.Errorf("d=%d: logicals overlap %d times", d, common)
		}
	}
}

func TestRotatedCycleStructure(t *testing.T) {
	r := NewRotated(3)
	words := r.CompileRotatedCycle()
	if len(words) != rotDepth {
		t.Fatalf("depth = %d, want %d (SC-17's 8)", len(words), rotDepth)
	}
	if SC17.Depth != rotDepth {
		t.Errorf("SC-17 descriptor depth %d disagrees with functional schedule %d", SC17.Depth, rotDepth)
	}
	for s, w := range words {
		if err := w.Validate(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	// Each ancilla has exactly |support| CNOT halves.
	cnots := map[int]int{}
	for _, w := range words {
		for q, op := range w.Ops {
			if op.IsTwoQubit() {
				cnots[q]++
			}
		}
	}
	for i := 0; i < r.NumAncillas(); i++ {
		if got := cnots[r.AncillaQubit(i)]; got != len(r.Support(i)) {
			t.Errorf("ancilla %d: %d CNOT halves, want %d", i, got, len(r.Support(i)))
		}
	}
}

func runRotatedCycle(u *awg.ExecutionUnit, words []isa.VLIW) map[int]int {
	synd := make(map[int]int)
	u.MeasSink = func(q, bit int) { synd[q] = bit }
	for _, w := range words {
		u.ExecuteWord(w)
	}
	return synd
}

func TestRotatedSyndromesSettleAndDetect(t *testing.T) {
	for _, d := range []int{3, 5} {
		r := NewRotated(d)
		words := r.CompileRotatedCycle()
		tb := clifford.New(r.NumQubits(), rand.New(rand.NewSource(int64(d))))
		u := awg.New(tb, nil)
		runRotatedCycle(u, words)
		base := runRotatedCycle(u, words)
		again := runRotatedCycle(u, words)
		for q, b := range base {
			if again[q] != b {
				t.Fatalf("d=%d: rotated syndrome at %d unstable", d, q)
			}
		}
		// Inject an X error on each data qubit: exactly the adjacent Z
		// checks flip.
		for dq := 0; dq < r.NumData(); dq++ {
			tb2 := clifford.New(r.NumQubits(), rand.New(rand.NewSource(int64(d*100+dq))))
			u2 := awg.New(tb2, nil)
			runRotatedCycle(u2, words)
			b2 := runRotatedCycle(u2, words)
			tb2.ApplyPauli(dq, clifford.PauliX)
			a2 := runRotatedCycle(u2, words)
			for i := 0; i < r.NumAncillas(); i++ {
				aq := r.AncillaQubit(i)
				adjacent := false
				for _, s := range r.Support(i) {
					if s == dq {
						adjacent = true
					}
				}
				wantFlip := adjacent && !r.AncillaIsX(i)
				if (b2[aq] != a2[aq]) != wantFlip {
					t.Fatalf("d=%d data %d: check %d flip mismatch", d, dq, i)
				}
			}
		}
	}
}

func TestRotatedLogicalStatePreserved(t *testing.T) {
	r := NewRotated(3)
	words := r.CompileRotatedCycle()
	tb := clifford.New(r.NumQubits(), rand.New(rand.NewSource(7)))
	u := awg.New(tb, nil)
	for c := 0; c < 4; c++ {
		runRotatedCycle(u, words)
		if got := tb.MeasureObservable(nil, r.LogicalZ()); got != 1 {
			t.Fatalf("cycle %d: rotated logical Z = %d, want +1", c, got)
		}
	}
	for _, q := range r.LogicalX() {
		tb.X(q)
	}
	runRotatedCycle(u, words)
	if got := tb.MeasureObservable(nil, r.LogicalZ()); got != -1 {
		t.Fatalf("after logical X: logical Z = %d, want -1", got)
	}
}

func TestRotatedHalvesQubitCost(t *testing.T) {
	// The rotated code's headline: same distance, substantially fewer
	// qubits than the unrotated planar layout — (2d-1)² vs 2d²-1, a ratio
	// rising from 1.47 at d=3 toward 2 asymptotically.
	prev := 0.0
	for _, d := range []int{3, 5, 7} {
		rot := NewRotated(d).NumQubits()
		unrot := NewPlanar(d).NumQubits()
		ratio := float64(unrot) / float64(rot)
		if ratio < 1.4 || ratio > 2.0 {
			t.Errorf("d=%d: unrotated/rotated = %d/%d = %.2f, want in [1.4,2)", d, unrot, rot, ratio)
		}
		if ratio <= prev {
			t.Errorf("d=%d: ratio %.2f not increasing toward 2", d, ratio)
		}
		prev = ratio
	}
}
