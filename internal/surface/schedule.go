package surface

import (
	"fmt"

	"quest/internal/isa"
)

// Schedule describes a syndrome-generation design. Depth is the number of
// lock-step sub-cycles (physical instructions per qubit) in one QECC cycle —
// the paper's "9 to 14 instructions". UnitCellInstrs is the total µop count
// the microcode must hold for one unit cell under the unit-cell replay
// optimization (the paper's Table 2 values). The four designs evaluated in
// the paper are provided as package constants.
type Schedule struct {
	Name           string
	Depth          int
	UnitCellInstrs int
	// UnitCellSide is the qubit count of the design's repeating block, used
	// for reporting (Steane/Shor use the 25-qubit cell; SC-17 and SC-13 are
	// the optimized 17- and 13-qubit codes of Tomita & Svore).
	UnitCellQubits int
}

// The four syndrome designs of the paper's evaluation (Table 2 and §7).
var (
	// Steane is the Steane-style extraction: 9 instructions per qubit per
	// QECC cycle.
	Steane = Schedule{Name: "Steane", Depth: 9, UnitCellInstrs: 148, UnitCellQubits: 25}
	// Shor is the Shor-style (cat-state) extraction: 14 instructions per
	// qubit per cycle.
	Shor = Schedule{Name: "Shor", Depth: 14, UnitCellInstrs: 300, UnitCellQubits: 25}
	// SC17 is the 17-qubit optimized code of Tomita & Svore.
	SC17 = Schedule{Name: "SC-17", Depth: 8, UnitCellInstrs: 136, UnitCellQubits: 17}
	// SC13 is the 13-qubit optimized code.
	SC13 = Schedule{Name: "SC-13", Depth: 11, UnitCellInstrs: 147, UnitCellQubits: 13}
)

// Schedules lists the paper's four designs in presentation order.
func Schedules() []Schedule { return []Schedule{Steane, Shor, SC17, SC13} }

// Validate checks the descriptor's internal consistency.
func (s Schedule) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("surface: schedule with empty name")
	}
	if s.Depth < activeDepth {
		return fmt.Errorf("surface: schedule %s depth %d below functional minimum %d", s.Name, s.Depth, activeDepth)
	}
	if s.UnitCellInstrs <= 0 || s.UnitCellQubits <= 0 {
		return fmt.Errorf("surface: schedule %s has non-positive unit cell sizing", s.Name)
	}
	return nil
}

// activeDepth is the number of sub-cycles that carry non-idle work in the
// functional extraction circuit: prep, four CNOT rounds, measure. Schedules
// with larger Depth pad the remainder with explicit idles, modelling the
// extra verification steps of the longer designs while keeping the measured
// stabilizers identical.
const activeDepth = 6

// Sub-cycle indices of the functional circuit.
const (
	stepPrep  = 0
	stepMeas  = activeDepth - 1
	firstCNOT = 1
)

// cnotDirOrder returns the direction sequence (indices into the lattice's
// N,E,W,S order) for the four CNOT sub-cycles of each ancilla type. X and Z
// ancillas interleave in the "zig/zag" pattern (N,W,E,S vs N,E,W,S) so that
// simultaneously measured X- and Z-stabilizers commute through the shared
// data qubits.
func cnotDirOrder(role Role) [4]int {
	if role == RoleAncillaX {
		return [4]int{0, 2, 1, 3} // N, W, E, S
	}
	return [4]int{0, 1, 2, 3} // N, E, W, S
}

// CompileCycle compiles one complete QECC cycle for the lattice under the
// given mask into schedule.Depth lock-step VLIW words. Every qubit receives
// exactly one µop per sub-cycle; masked qubits and data qubits with no CNOT
// partner in a sub-cycle receive explicit idles. This is the instruction
// stream a software-managed baseline must push through the control processor
// every cycle, and exactly what a QuEST MCE replays from microcode instead.
func CompileCycle(lat Lattice, sched Schedule, mask *Mask) []isa.VLIW {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	words := make([]isa.VLIW, sched.Depth)
	for s := range words {
		words[s] = isa.NewVLIW(lat.NumQubits())
	}
	masked := func(i int) bool { return mask != nil && mask.Disabled(i) }

	for i := 0; i < lat.NumQubits(); i++ {
		if masked(i) {
			continue // stays Idle in every sub-cycle
		}
		r, c := lat.Coord(i)
		role := lat.RoleAt(r, c)
		if role == RoleData {
			continue // data µops are set by their ancilla's CNOT below
		}
		// Prep and measurement sub-cycles.
		if role == RoleAncillaX {
			words[stepPrep].Set(i, isa.OpPrepPlus)
			words[stepMeas].Set(i, isa.OpMeasX)
		} else {
			words[stepPrep].Set(i, isa.OpPrep0)
			words[stepMeas].Set(i, isa.OpMeasZ)
		}
		// Four CNOT sub-cycles.
		order := cnotDirOrder(role)
		for k := 0; k < 4; k++ {
			step := firstCNOT + k
			n := lat.Neighbor(r, c, order[k])
			if n < 0 || masked(n) {
				continue // boundary or masked partner: both stay idle
			}
			if role == RoleAncillaX {
				// X-syndrome: ancilla is control, data is target.
				words[step].SetPair(i, isa.OpCNOTControl, n)
				words[step].SetPair(n, isa.OpCNOTTarget, i)
			} else {
				// Z-syndrome: data is control, ancilla is target.
				words[step].SetPair(n, isa.OpCNOTControl, i)
				words[step].SetPair(i, isa.OpCNOTTarget, n)
			}
		}
	}
	return words
}

// cellKey identifies a unit-cell pattern entry: the site parity class plus
// the boundary/mask signature of the four neighbors. The microcode's replay
// state machine regenerates the full-lattice stream from this table — the
// paper's unit-cell optimization — so its size is O(1) in the lattice size.
type cellKey struct {
	rowParity, colParity int
	// neighborAbsent bit k set means the N,E,W,S neighbor k is off-lattice
	// or masked, selecting the boundary variant of the pattern entry.
	neighborAbsent uint8
	selfMasked     bool
}

// CellTable is the unit-cell microcode content: for each pattern entry, the
// µop sequence over the schedule's sub-cycles. Entries reference neighbors by
// direction rather than absolute address, which is what lets the table stay
// constant-size.
type CellTable struct {
	sched   Schedule
	entries map[cellKey][]cellOp
}

type cellOp struct {
	op  isa.Opcode
	dir int // neighbor direction for two-qubit ops, -1 otherwise
}

// BuildCellTable constructs the unit-cell pattern table for a schedule. The
// table is lattice-independent: it enumerates the parity classes and
// neighbor signatures once.
func BuildCellTable(sched Schedule) *CellTable {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	t := &CellTable{sched: sched, entries: make(map[cellKey][]cellOp)}
	for rp := 0; rp < 2; rp++ {
		for cp := 0; cp < 2; cp++ {
			for sig := uint8(0); sig < 16; sig++ {
				for _, selfMasked := range []bool{false, true} {
					k := cellKey{rp, cp, sig, selfMasked}
					t.entries[k] = t.build(k)
				}
			}
		}
	}
	return t
}

func (t *CellTable) build(k cellKey) []cellOp {
	ops := make([]cellOp, t.sched.Depth)
	for i := range ops {
		ops[i] = cellOp{op: isa.OpIdle, dir: -1}
	}
	if k.selfMasked {
		return ops
	}
	var role Role
	switch {
	case (k.rowParity+k.colParity)%2 == 0:
		role = RoleData
	case k.rowParity == 0:
		role = RoleAncillaX
	default:
		role = RoleAncillaZ
	}
	if role == RoleData {
		// Data qubits participate in up to four CNOTs, one per present
		// ancilla neighbor, at the sub-cycle that ancilla's schedule dictates.
		// The neighbor in direction dir is an ancilla whose own direction
		// back to this data qubit is the opposite direction.
		for dir := 0; dir < 4; dir++ {
			if k.neighborAbsent&(1<<dir) != 0 {
				continue
			}
			// Ancilla role depends on its row parity: moving N/S flips row
			// parity, E/W keeps it.
			ancRowParity := k.rowParity
			if dir == 0 || dir == 3 {
				ancRowParity ^= 1
			}
			var ancRole Role
			if ancRowParity == 0 {
				ancRole = RoleAncillaX
			} else {
				ancRole = RoleAncillaZ
			}
			order := cnotDirOrder(ancRole)
			back := opposite(dir)
			for kk := 0; kk < 4; kk++ {
				if order[kk] != back {
					continue
				}
				step := firstCNOT + kk
				if ancRole == RoleAncillaX {
					ops[step] = cellOp{op: isa.OpCNOTTarget, dir: dir}
				} else {
					ops[step] = cellOp{op: isa.OpCNOTControl, dir: dir}
				}
			}
		}
		return ops
	}
	// Ancilla entries.
	if role == RoleAncillaX {
		ops[stepPrep] = cellOp{op: isa.OpPrepPlus, dir: -1}
		ops[stepMeas] = cellOp{op: isa.OpMeasX, dir: -1}
	} else {
		ops[stepPrep] = cellOp{op: isa.OpPrep0, dir: -1}
		ops[stepMeas] = cellOp{op: isa.OpMeasZ, dir: -1}
	}
	order := cnotDirOrder(role)
	for kk := 0; kk < 4; kk++ {
		dir := order[kk]
		if k.neighborAbsent&(1<<dir) != 0 {
			continue
		}
		step := firstCNOT + kk
		if role == RoleAncillaX {
			ops[step] = cellOp{op: isa.OpCNOTControl, dir: dir}
		} else {
			ops[step] = cellOp{op: isa.OpCNOTTarget, dir: dir}
		}
	}
	return ops
}

func opposite(dir int) int {
	switch dir {
	case 0:
		return 3
	case 3:
		return 0
	case 1:
		return 2
	default:
		return 1
	}
}

// NumEntries returns the number of pattern entries stored in the table.
func (t *CellTable) NumEntries() int { return len(t.entries) }

// Schedule returns the schedule the table was built for.
func (t *CellTable) Schedule() Schedule { return t.sched }

// Expand replays the unit-cell table across a full lattice under a mask,
// regenerating the complete per-cycle VLIW stream. This models the MCE's
// replay state machine; by construction (verified by tests) the result is
// identical to CompileCycle's direct compilation.
func (t *CellTable) Expand(lat Lattice, mask *Mask) []isa.VLIW {
	words := make([]isa.VLIW, t.sched.Depth)
	for s := range words {
		words[s] = isa.NewVLIW(lat.NumQubits())
	}
	masked := func(i int) bool { return mask != nil && mask.Disabled(i) }
	for i := 0; i < lat.NumQubits(); i++ {
		r, c := lat.Coord(i)
		var sig uint8
		for dir := 0; dir < 4; dir++ {
			n := lat.Neighbor(r, c, dir)
			if n < 0 || masked(n) {
				sig |= 1 << dir
			}
		}
		k := cellKey{rowParity: r % 2, colParity: c % 2, neighborAbsent: sig, selfMasked: masked(i)}
		ops := t.entries[k]
		for s, co := range ops {
			if co.dir < 0 {
				if co.op != isa.OpIdle {
					words[s].Set(i, co.op)
				}
				continue
			}
			n := lat.Neighbor(r, c, co.dir)
			words[s].SetPair(i, co.op, n)
		}
	}
	return words
}

// SyndromeBit is one ancilla measurement produced by a QECC cycle.
type SyndromeBit struct {
	Qubit int // flat ancilla index
	Role  Role
	Bit   int
}
