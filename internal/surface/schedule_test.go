package surface

import (
	"math/rand"
	"testing"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/isa"
)

func TestScheduleDescriptors(t *testing.T) {
	// Paper constants: Steane 9 instrs, Shor 14 (§7); Table 2 unit-cell
	// instruction counts 148/300/136/147.
	if Steane.Depth != 9 || Shor.Depth != 14 {
		t.Errorf("depths: Steane=%d Shor=%d, want 9/14", Steane.Depth, Shor.Depth)
	}
	wantUC := map[string]int{"Steane": 148, "Shor": 300, "SC-17": 136, "SC-13": 147}
	for _, s := range Schedules() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.UnitCellInstrs != wantUC[s.Name] {
			t.Errorf("%s unit-cell instrs = %d, want %d", s.Name, s.UnitCellInstrs, wantUC[s.Name])
		}
	}
	bad := Schedule{Name: "tiny", Depth: 3, UnitCellInstrs: 10, UnitCellQubits: 25}
	if err := bad.Validate(); err == nil {
		t.Error("sub-functional depth accepted")
	}
	if err := (Schedule{}).Validate(); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestCompileCycleStructure(t *testing.T) {
	for _, sched := range Schedules() {
		lat := NewPlanar(3)
		words := CompileCycle(lat, sched, nil)
		if len(words) != sched.Depth {
			t.Fatalf("%s: %d words, want %d", sched.Name, len(words), sched.Depth)
		}
		for s, w := range words {
			if w.Len() != lat.NumQubits() {
				t.Fatalf("%s step %d: width %d", sched.Name, s, w.Len())
			}
			if err := w.Validate(); err != nil {
				t.Fatalf("%s step %d: %v", sched.Name, s, err)
			}
		}
		// Every unmasked ancilla preps and measures exactly once.
		for _, a := range lat.Qubits(RoleAncillaX) {
			if words[stepPrep].Ops[a] != isa.OpPrepPlus {
				t.Errorf("%s: X ancilla %d prep = %s", sched.Name, a, words[stepPrep].Ops[a])
			}
			if words[stepMeas].Ops[a] != isa.OpMeasX {
				t.Errorf("%s: X ancilla %d meas = %s", sched.Name, a, words[stepMeas].Ops[a])
			}
		}
		for _, a := range lat.Qubits(RoleAncillaZ) {
			if words[stepPrep].Ops[a] != isa.OpPrep0 || words[stepMeas].Ops[a] != isa.OpMeasZ {
				t.Errorf("%s: Z ancilla %d prep/meas wrong", sched.Name, a)
			}
		}
		// Padding sub-cycles are all idle.
		for s := activeDepth; s < sched.Depth; s++ {
			for q, op := range words[s].Ops {
				if op != isa.OpIdle {
					t.Errorf("%s pad step %d qubit %d: %s", sched.Name, s, q, op)
				}
			}
		}
	}
}

func TestCompileCycleCNOTCounts(t *testing.T) {
	lat := NewPlanar(5)
	words := CompileCycle(lat, Steane, nil)
	// Each ancilla performs exactly len(support) CNOT halves across the
	// cycle; each data qubit participates once per adjacent ancilla.
	cnots := make(map[int]int)
	for _, w := range words {
		for q, op := range w.Ops {
			if op.IsTwoQubit() {
				cnots[q]++
			}
		}
	}
	for _, role := range []Role{RoleAncillaX, RoleAncillaZ} {
		for _, a := range lat.Qubits(role) {
			want := len(lat.StabilizerSupport(a))
			if cnots[a] != want {
				t.Errorf("ancilla %d: %d CNOT halves, want %d", a, cnots[a], want)
			}
		}
	}
	for _, dq := range lat.Qubits(RoleData) {
		r, c := lat.Coord(dq)
		want := 0
		for dir := 0; dir < 4; dir++ {
			if lat.Neighbor(r, c, dir) >= 0 {
				want++
			}
		}
		if cnots[dq] != want {
			t.Errorf("data %d: %d CNOT halves, want %d", dq, cnots[dq], want)
		}
	}
}

func TestMaskedQubitsStayIdle(t *testing.T) {
	lat := NewPlanar(5)
	mask := NewMask(lat)
	mask.SetRegion(2, 2, 4, 4, true)
	words := CompileCycle(lat, Steane, mask)
	for s, w := range words {
		for q, op := range w.Ops {
			if mask.Disabled(q) && op != isa.OpIdle {
				t.Errorf("step %d: masked qubit %d got %s", s, q, op)
			}
			// No CNOT may touch a masked partner.
			if op.IsTwoQubit() && mask.Disabled(w.Pairs[q]) {
				t.Errorf("step %d: qubit %d pairs into masked region", s, q)
			}
		}
	}
}

// TestUnitCellExpansionMatchesDirectCompile is the paper's key µcode insight:
// replaying the constant-size unit-cell table regenerates the full lattice
// stream exactly, for any lattice size and any mask.
func TestUnitCellExpansionMatchesDirectCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sched := range Schedules() {
		table := BuildCellTable(sched)
		for _, dims := range [][2]int{{3, 3}, {5, 5}, {5, 9}, {9, 5}, {11, 11}, {4, 6}} {
			lat := NewLattice(dims[0], dims[1])
			masks := []*Mask{nil, NewMask(lat)}
			// A random mask too.
			rm := NewMask(lat)
			for i := 0; i < lat.NumQubits(); i++ {
				if rng.Intn(4) == 0 {
					rm.SetDisabled(i, true)
				}
			}
			masks = append(masks, rm)
			for mi, mask := range masks {
				direct := CompileCycle(lat, sched, mask)
				replayed := table.Expand(lat, mask)
				if len(direct) != len(replayed) {
					t.Fatalf("%s %v mask%d: depth %d vs %d", sched.Name, dims, mi, len(direct), len(replayed))
				}
				for s := range direct {
					if !direct[s].Equal(replayed[s]) {
						t.Fatalf("%s %v mask%d step %d: unit-cell replay diverges from direct compile",
							sched.Name, dims, mi, s)
					}
				}
			}
		}
	}
}

func TestCellTableIsLatticeIndependent(t *testing.T) {
	table := BuildCellTable(Steane)
	// Constant size: 2 parities × 2 parities × 16 signatures × 2 mask states.
	if got := table.NumEntries(); got != 128 {
		t.Errorf("cell table entries = %d, want 128", got)
	}
	if table.Schedule().Name != "Steane" {
		t.Error("schedule not retained")
	}
}

// runCycle executes one compiled QECC cycle on a fresh or existing execution
// unit, returning the syndrome bits keyed by ancilla index.
func runCycle(u *awg.ExecutionUnit, words []isa.VLIW) map[int]int {
	synd := make(map[int]int)
	u.MeasSink = func(q, bit int) { synd[q] = bit }
	for _, w := range words {
		u.ExecuteWord(w)
	}
	return synd
}

// TestSyndromeExtractionNoiselessConvergence: on a noiseless substrate, the
// second and later QECC cycles must reproduce identical syndromes (the lattice
// has been projected into a stabilizer eigenstate), and Z syndromes starting
// from |0...0> are deterministically 0.
func TestSyndromeExtractionNoiselessConvergence(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		lat := NewPlanar(d)
		words := CompileCycle(lat, Steane, nil)
		tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(int64(d))))
		u := awg.New(tb, nil)
		first := runCycle(u, words)
		for _, a := range lat.Qubits(RoleAncillaZ) {
			if first[a] != 0 {
				t.Errorf("d=%d: initial Z syndrome at %d = %d, want 0", d, a, first[a])
			}
		}
		second := runCycle(u, words)
		third := runCycle(u, words)
		for a, b := range second {
			if third[a] != b {
				t.Errorf("d=%d: syndrome at %d not stable: %d then %d", d, a, b, third[a])
			}
			if first[a] != b {
				// X syndromes are random on the first round but must then
				// freeze; Z syndromes must match from the start.
				if lat.RoleOf(a) == RoleAncillaZ {
					t.Errorf("d=%d: Z syndrome at %d drifted %d->%d", d, a, first[a], b)
				}
			}
		}
	}
}

// TestSingleErrorSyndromeSignatures verifies the textbook signatures: an X
// error on a data qubit flips exactly the adjacent Z-syndromes, and a Z error
// flips the adjacent X-syndromes, relative to the previous round.
func TestSingleErrorSyndromeSignatures(t *testing.T) {
	lat := NewPlanar(3)
	words := CompileCycle(lat, Steane, nil)
	for _, dq := range lat.Qubits(RoleData) {
		for _, p := range []clifford.Pauli{clifford.PauliX, clifford.PauliZ} {
			tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(int64(dq))))
			u := awg.New(tb, nil)
			runCycle(u, words)
			base := runCycle(u, words)
			tb.ApplyPauli(dq, p)
			after := runCycle(u, words)
			r, c := lat.Coord(dq)
			wantFlips := map[int]bool{}
			for dir := 0; dir < 4; dir++ {
				n := lat.Neighbor(r, c, dir)
				if n < 0 {
					continue
				}
				switch {
				case p == clifford.PauliX && lat.RoleOf(n) == RoleAncillaZ:
					wantFlips[n] = true
				case p == clifford.PauliZ && lat.RoleOf(n) == RoleAncillaX:
					wantFlips[n] = true
				}
			}
			for a := range base {
				flipped := base[a] != after[a]
				if flipped != wantFlips[a] {
					t.Errorf("data %d %s error: ancilla %d flipped=%v, want %v",
						dq, p, a, flipped, wantFlips[a])
				}
			}
		}
	}
}

// TestLogicalStatePreservedAcrossCycles: syndrome extraction must not disturb
// the encoded logical information. Prepare logical |0> (all data |0>, run a
// cycle to project), then verify the logical Z expectation stays +1 across
// many cycles.
func TestLogicalStatePreservedAcrossCycles(t *testing.T) {
	lat := NewPlanar(3)
	words := CompileCycle(lat, Steane, nil)
	tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(11)))
	u := awg.New(tb, nil)
	for cycle := 0; cycle < 5; cycle++ {
		runCycle(u, words)
		if got := tb.MeasureObservable(nil, lat.LogicalZ()); got != 1 {
			t.Fatalf("cycle %d: logical Z expectation = %d, want +1", cycle, got)
		}
	}
	// An injected logical X chain must flip the logical Z value and stay
	// flipped (undetectable by stabilizers).
	for _, q := range lat.LogicalX() {
		tb.X(q)
	}
	runCycle(u, words)
	if got := tb.MeasureObservable(nil, lat.LogicalZ()); got != -1 {
		t.Fatalf("after logical X: logical Z expectation = %d, want -1", got)
	}
}

func TestShorScheduleAlsoExtractsSyndromes(t *testing.T) {
	lat := NewPlanar(3)
	words := CompileCycle(lat, Shor, nil)
	tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(5)))
	u := awg.New(tb, nil)
	runCycle(u, words)
	synd := runCycle(u, words)
	dq := lat.Qubits(RoleData)[4]
	tb.ApplyPauli(dq, clifford.PauliX)
	after := runCycle(u, words)
	flips := 0
	for a := range synd {
		if synd[a] != after[a] {
			flips++
		}
	}
	if flips == 0 {
		t.Error("Shor schedule failed to detect an injected X error")
	}
}

func BenchmarkCompileCycleD5(b *testing.B) {
	lat := NewPlanar(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompileCycle(lat, Steane, nil)
	}
}

func BenchmarkUnitCellExpandD5(b *testing.B) {
	lat := NewPlanar(5)
	table := BuildCellTable(Steane)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table.Expand(lat, nil)
	}
}
