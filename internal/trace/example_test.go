package trace_test

import (
	"fmt"

	"quest/internal/isa"
	"quest/internal/trace"
)

// ExampleFormat renders one sub-cycle of a physical stream.
func ExampleFormat() {
	w := isa.NewVLIW(4)
	w.Set(0, isa.OpPrep0)
	w.SetPair(1, isa.OpCNOTControl, 2)
	w.SetPair(2, isa.OpCNOTTarget, 1)
	fmt.Print(trace.Format([]isa.VLIW{w}))
	// Output:
	// c0.0: PREP0@0 CNOTC@1->2 CNOTT@2->1 idle×1
}

// ExampleDiff localizes the first divergence between two streams.
func ExampleDiff() {
	line, a, b := trace.Diff("c0.0: H@0\nc0.1: X@1\n", "c0.0: H@0\nc0.1: Z@1\n")
	fmt.Println("line:", line)
	fmt.Println(a, "vs", b)
	// Output:
	// line: 2
	// c0.1: X@1 vs c0.1: Z@1
}
