// Package trace renders physical instruction streams in a compact, diffable
// text form — the debugging view of what an MCE actually delivers to its
// tile, cycle by cycle. Stream-equivalence failures (microcode replay vs
// software compilation) are diagnosed by diffing two traces; the format is
// stable so tests can golden-match it.
//
// Format: one line per sub-cycle,
//
//	c<cycle>.<sub>: <op>@<qubit>[-><pair>] ... ; idle×N
//
// with idle runs compressed and µops sorted by qubit.
package trace

import (
	"fmt"
	"io"
	"strings"

	"quest/internal/isa"
)

// Writer traces VLIW streams to an io.Writer.
type Writer struct {
	w     io.Writer
	cycle int
	err   error
}

// New returns a tracer.
func New(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error encountered.
func (t *Writer) Err() error { return t.err }

// Cycle traces one QECC cycle's words and advances the cycle counter.
func (t *Writer) Cycle(words []isa.VLIW) {
	for s, w := range words {
		t.word(t.cycle, s, w)
	}
	t.cycle++
}

func (t *Writer) word(cycle, sub int, w isa.VLIW) {
	if t.err != nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "c%d.%d:", cycle, sub)
	idle := 0
	flushIdle := func() {
		if idle > 0 {
			fmt.Fprintf(&b, " idle×%d", idle)
			idle = 0
		}
	}
	for q, op := range w.Ops {
		if op == isa.OpIdle {
			idle++
			continue
		}
		flushIdle()
		if op.IsTwoQubit() {
			fmt.Fprintf(&b, " %s@%d->%d", op, q, w.Pairs[q])
		} else {
			fmt.Fprintf(&b, " %s@%d", op, q)
		}
	}
	flushIdle()
	b.WriteByte('\n')
	if _, err := io.WriteString(t.w, b.String()); err != nil {
		t.err = err
	}
}

// Format renders a whole cycle list to a string (convenience for tests).
func Format(cycles ...[]isa.VLIW) string {
	var b strings.Builder
	tr := New(&b)
	for _, c := range cycles {
		tr.Cycle(c)
	}
	return b.String()
}

// Diff returns the first line where two traces differ, or -1 with empty
// strings if identical. Used to localize stream-equivalence violations.
func Diff(a, b string) (line int, la, lb string) {
	as := strings.Split(a, "\n")
	bs := strings.Split(b, "\n")
	n := len(as)
	if len(bs) > n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		var x, y string
		if i < len(as) {
			x = as[i]
		}
		if i < len(bs) {
			y = bs[i]
		}
		if x != y {
			return i + 1, x, y
		}
	}
	return -1, "", ""
}
