package trace

import (
	"errors"
	"strings"
	"testing"

	"quest/internal/isa"
	"quest/internal/microcode"
	"quest/internal/surface"
)

func TestFormatGolden(t *testing.T) {
	w1 := isa.NewVLIW(5)
	w1.Set(0, isa.OpPrep0)
	w1.SetPair(2, isa.OpCNOTControl, 3)
	w1.SetPair(3, isa.OpCNOTTarget, 2)
	w2 := isa.NewVLIW(5)
	w2.Set(4, isa.OpMeasZ)
	got := Format([]isa.VLIW{w1, w2})
	want := "c0.0: PREP0@0 idle×1 CNOTC@2->3 CNOTT@3->2 idle×1\n" +
		"c0.1: idle×4 MEASZ@4\n"
	if got != want {
		t.Errorf("trace:\n%q\nwant:\n%q", got, want)
	}
}

func TestCycleCounterAdvances(t *testing.T) {
	var b strings.Builder
	tr := New(&b)
	w := []isa.VLIW{isa.NewVLIW(1)}
	tr.Cycle(w)
	tr.Cycle(w)
	out := b.String()
	if !strings.Contains(out, "c0.0:") || !strings.Contains(out, "c1.0:") {
		t.Errorf("cycle counter missing: %q", out)
	}
	if tr.Err() != nil {
		t.Errorf("unexpected error: %v", tr.Err())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestWriteErrorsSurface(t *testing.T) {
	tr := New(failWriter{})
	tr.Cycle([]isa.VLIW{isa.NewVLIW(1)})
	if tr.Err() == nil {
		t.Error("write error swallowed")
	}
	// Further writes are no-ops but keep the first error.
	tr.Cycle([]isa.VLIW{isa.NewVLIW(1)})
	if tr.Err() == nil || tr.Err().Error() != "boom" {
		t.Errorf("error not preserved: %v", tr.Err())
	}
}

func TestDiff(t *testing.T) {
	a := "l1\nl2\nl3\n"
	b := "l1\nXX\nl3\n"
	line, la, lb := Diff(a, b)
	if line != 2 || la != "l2" || lb != "XX" {
		t.Errorf("diff = %d %q %q", line, la, lb)
	}
	if line, _, _ := Diff(a, a); line != -1 {
		t.Error("identical traces diffed")
	}
	// Length mismatch is a difference.
	if line, _, _ := Diff("x\n", "x\ny\n"); line < 0 {
		t.Error("length mismatch missed")
	}
}

// TestTraceProvesStreamEquivalence uses the tracer the way a developer
// would: render the software-compiled and microcode-replayed streams and
// assert a clean diff.
func TestTraceProvesStreamEquivalence(t *testing.T) {
	lat := surface.NewLattice(5, 9)
	mask := surface.NewMask(lat)
	mask.SetRegion(0, 0, 2, 2, true)
	direct := surface.CompileCycle(lat, surface.Steane, mask)
	st := microcode.NewStore(microcode.DesignUnitCell, surface.Steane, lat)
	replayed := st.ReplayCycle(mask)
	if line, la, lb := Diff(Format(direct), Format(replayed)); line >= 0 {
		t.Errorf("streams diverge at line %d:\n  compiled: %s\n  replayed: %s", line, la, lb)
	}
}
