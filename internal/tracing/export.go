package tracing

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CanonicalSort orders events by every field — (Proc, Tid, Ts, Dur, Ph,
// Name, ArgKey, Arg) — a total order up to exact duplicates. Two tracers
// holding the same event *multiset* (e.g. per-worker shards merged in any
// order) therefore serialize byte-identically after CanonicalSort, which is
// the determinism contract mc.RunTraced relies on. It also guarantees the
// exported ts sequence is non-decreasing within every (pid, tid) track.
func CanonicalSort(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		if a.Ph != b.Ph {
			return a.Ph < b.Ph
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.ArgKey != b.ArgKey {
			return a.ArgKey < b.ArgKey
		}
		return a.Arg < b.Arg
	})
}

// WriteJSON serializes the trace as Chrome trace-event JSON ("JSON object
// format"), loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
// One simulated cycle maps to one microsecond of trace time. Each component
// class becomes a process (pid) with its name in a process_name metadata
// record; each instance becomes a thread (tid) within it. Events are
// canonically sorted, so the output is a deterministic function of the
// recorded event multiset.
func (t *Tracer) WriteJSON(w io.Writer) error {
	evs := t.Events()
	CanonicalSort(evs)

	// Deterministic pid assignment: sorted unique procs, 1-based.
	pid := make(map[string]int)
	var procs []string
	for _, ev := range evs {
		if _, ok := pid[ev.Proc]; !ok {
			pid[ev.Proc] = 0
			procs = append(procs, ev.Proc)
		}
	}
	sort.Strings(procs)
	for i, p := range procs {
		pid[p] = i + 1
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	// Metadata: name every process and thread so Perfetto's track labels read
	// "mce · tile 0" instead of bare numbers.
	type track struct {
		proc string
		tid  int
	}
	seen := map[track]bool{}
	for _, p := range procs {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pid[p], strconv.Quote(p)))
	}
	for _, ev := range evs {
		k := track{ev.Proc, ev.Tid}
		if seen[k] {
			continue
		}
		seen[k] = true
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			pid[ev.Proc], ev.Tid, strconv.Quote(fmt.Sprintf("%s %d", ev.Proc, ev.Tid))))
	}
	for _, ev := range evs {
		args := ""
		if ev.ArgKey != "" {
			args = fmt.Sprintf(`,"args":{%s:%d}`, strconv.Quote(ev.ArgKey), ev.Arg)
		}
		switch ev.Ph {
		case PhaseSpan:
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"cat":%s%s}`,
				pid[ev.Proc], ev.Tid, ev.Ts, ev.Dur, strconv.Quote(ev.Name), strconv.Quote(ev.Proc), args))
		default:
			emit(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%d,"s":"t","name":%s,"cat":%s%s}`,
				pid[ev.Proc], ev.Tid, ev.Ts, strconv.Quote(ev.Name), strconv.Quote(ev.Proc), args))
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// TrackSummary is one track's digest in Summarize.
type TrackSummary struct {
	Proc string
	Tid  int
	// Spans and Instants count events by phase.
	Spans, Instants int
	// Busy/Stall/Idle are summed span durations (cycles) classified by span
	// name: "stall*" counts as stall, "idle*" as idle, everything else busy.
	Busy, Stall, Idle int64
	// First and Last bound the track's activity: [min ts, max ts+dur].
	First, Last int64
}

// Classify returns the busy/stall/idle bucket a span name falls into.
func Classify(name string) string {
	switch {
	case hasPrefix(name, "stall"):
		return "stall"
	case hasPrefix(name, "idle"):
		return "idle"
	default:
		return "busy"
	}
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Summaries computes per-track digests, sorted by (Proc, Tid).
func (t *Tracer) Summaries() []TrackSummary {
	evs := t.Events()
	CanonicalSort(evs)
	var out []TrackSummary
	for _, ev := range evs {
		n := len(out)
		if n == 0 || out[n-1].Proc != ev.Proc || out[n-1].Tid != ev.Tid {
			out = append(out, TrackSummary{Proc: ev.Proc, Tid: ev.Tid, First: ev.Ts, Last: ev.Ts + ev.Dur})
			n++
		}
		s := &out[n-1]
		if ev.Ts < s.First {
			s.First = ev.Ts
		}
		if end := ev.Ts + ev.Dur; end > s.Last {
			s.Last = end
		}
		if ev.Ph == PhaseSpan {
			s.Spans++
			switch Classify(ev.Name) {
			case "stall":
				s.Stall += ev.Dur
			case "idle":
				s.Idle += ev.Dur
			default:
				s.Busy += ev.Dur
			}
		} else {
			s.Instants++
		}
	}
	return out
}

// Summarize renders the per-track busy/stall/idle breakdown as aligned text:
// the at-a-glance answer to "where did the cycles go" that the JSON trace
// answers in full detail.
func (t *Tracer) Summarize(w io.Writer) error {
	sums := t.Summaries()
	if _, err := fmt.Fprintf(w, "%-14s %8s %8s %9s %9s %9s %7s  %s\n",
		"track", "spans", "events", "busy", "stall", "idle", "busy%", "cycles"); err != nil {
		return err
	}
	for _, s := range sums {
		total := s.Busy + s.Stall + s.Idle
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.Busy) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "%-14s %8d %8d %9d %9d %9d %6.1f%%  [%d,%d)\n",
			fmt.Sprintf("%s/%d", s.Proc, s.Tid), s.Spans, s.Spans+s.Instants,
			s.Busy, s.Stall, s.Idle, pct, s.First, s.Last); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "dropped %d event(s): ring capacity %d exceeded (raise -trace-buf)\n",
			d, t.Capacity()); err != nil {
			return err
		}
	}
	return nil
}
