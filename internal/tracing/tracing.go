// Package tracing is the repository's cycle-correlated event tracer: a
// low-overhead, concurrency-safe recorder of begin/end spans and instant
// events keyed by *simulated QECC cycle* and component track (master
// controller, per-tile MCE, decoder windows, NoC hops, DRAM streams), with a
// Chrome trace-event JSON exporter loadable in Perfetto or chrome://tracing.
//
// The metrics registry (internal/metrics) answers "how much, how fast, on
// average"; this package answers "when, and in what order": which cycle an
// MCE stalled waiting for a magic state, which decode window's flush lined up
// with a burst of escalations, how long a logical instruction sat in the NoC.
// The related controller literature debugs exactly this view — QuMA's
// per-cycle timing diagrams (arXiv:1708.07677) and the decode-latency
// timelines of Das et al. (arXiv:2001.06598) — and a regenerable trace turns
// those hand-drawn figures into per-run artifacts.
//
// Design points, mirroring internal/metrics:
//
//   - The timebase is the simulated cycle, never the wall clock, so traces
//     are deterministic artifacts of (config, seed) and diffable run to run.
//   - Recording is gated behind a nil receiver: every method no-ops on a nil
//     *Tracer, so instrumented hot paths pay one predictable branch and zero
//     allocations when tracing is off.
//   - Storage is a fixed-capacity ring per Tracer; a full ring overwrites the
//     oldest events and counts the drops instead of growing without bound or
//     stalling the simulation.
//   - Tracers are injectable and mergeable: a Monte-Carlo worker pool hands
//     each goroutine a private shard and merges the shards after the pool
//     drains (mc.RunTraced), so the merged event multiset is independent of
//     the worker count and CanonicalSort makes the export byte-identical.
//   - Tracing never feeds back into simulation results: removing every Span
//     and Instant call changes nothing but the artifact.
package tracing

import "sync"

// Phase identifiers (a subset of the Chrome trace-event phases).
const (
	// PhaseSpan is a complete duration event ("X"): ts..ts+dur.
	PhaseSpan = 'X'
	// PhaseInstant is a point event ("i") at ts.
	PhaseInstant = 'i'
)

// Event is one recorded trace event. Proc/Tid name the track: Proc groups a
// component class ("master", "mce", "decoder", "noc", "dram") and Tid its
// instance (tile index, window id, 0). Ts and Dur are in simulated cycles.
// ArgKey/Arg carry one optional numeric payload (µops issued, defects
// matched, packet latency) rendered into the event's args map on export.
type Event struct {
	Proc   string
	Tid    int
	Name   string
	Ph     byte
	Ts     int64
	Dur    int64
	ArgKey string
	Arg    int64
}

// DefaultCapacity is the ring size used when New is given a non-positive
// capacity: 256k events ≈ a few tens of MB of JSON, enough for a multi-tile
// distillation run with per-cycle spans on every track.
const DefaultCapacity = 1 << 18

// Default is the process-wide tracer. It is nil — tracing off — unless a
// binary enables it (cmd/questsim and cmd/questbench do so for their -trace
// flag). Components resolve their Tracer as "config field, else Default", so
// a nil everywhere keeps every hot path on the zero-cost branch.
var Default *Tracer

// Tracer is a bounded event recorder. All methods are safe for concurrent
// use and safe on a nil receiver (recording methods become no-ops).
type Tracer struct {
	mu      sync.Mutex
	cap     int
	buf     []Event
	head    int // next overwrite position once the ring is full
	full    bool
	dropped uint64
}

// New returns a tracer with the given ring capacity (non-positive means
// DefaultCapacity).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{cap: capacity}
}

// Capacity returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// Enabled reports whether recording is live. The canonical call-site gate is
// simply `if t != nil`; Enabled exists for callers holding an interface-ish
// optional field.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.head] = ev
		t.head++
		if t.head == t.cap {
			t.head = 0
		}
		t.full = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Span records a complete span on track (proc, tid) covering cycles
// [cycle, cycle+dur). No-op on a nil tracer.
func (t *Tracer) Span(proc string, tid int, name string, cycle, dur int64) {
	if t == nil {
		return
	}
	t.record(Event{Proc: proc, Tid: tid, Name: name, Ph: PhaseSpan, Ts: cycle, Dur: dur})
}

// SpanArg is Span with one numeric argument (rendered as args{key: arg}).
func (t *Tracer) SpanArg(proc string, tid int, name string, cycle, dur int64, key string, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{Proc: proc, Tid: tid, Name: name, Ph: PhaseSpan, Ts: cycle, Dur: dur, ArgKey: key, Arg: arg})
}

// Instant records a point event at the given cycle. No-op on a nil tracer.
func (t *Tracer) Instant(proc string, tid int, name string, cycle int64) {
	if t == nil {
		return
	}
	t.record(Event{Proc: proc, Tid: tid, Name: name, Ph: PhaseInstant, Ts: cycle})
}

// InstantArg is Instant with one numeric argument.
func (t *Tracer) InstantArg(proc string, tid int, name string, cycle int64, key string, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{Proc: proc, Tid: tid, Name: name, Ph: PhaseInstant, Ts: cycle, ArgKey: key, Arg: arg})
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events the ring has overwritten (oldest-first).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the buffered events in insertion order (oldest
// surviving event first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eventsLocked()
}

func (t *Tracer) eventsLocked() []Event {
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Merge folds src's events into t in src's insertion order and accumulates
// its drop count — the per-worker shard aggregation step, mirroring
// metrics.Registry.Merge. Merging a shard into a smaller or near-full parent
// ring may itself drop (counted); size the parent for the fan-in when traces
// must be complete.
func (t *Tracer) Merge(src *Tracer) {
	if t == nil || src == nil || t == src {
		return
	}
	src.mu.Lock()
	evs := src.eventsLocked()
	dropped := src.dropped
	src.mu.Unlock()
	for _, ev := range evs {
		t.record(ev)
	}
	if dropped > 0 {
		t.mu.Lock()
		t.dropped += dropped
		t.mu.Unlock()
	}
}

// Reset discards all buffered events and the drop count (capacity is kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.head = 0
	t.full = false
	t.dropped = 0
	t.mu.Unlock()
}
