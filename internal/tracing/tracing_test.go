package tracing

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerIsFreeAndSafe pins the off switch: every recording method on
// a nil *Tracer must be a no-op and allocation-free, because that is the
// state every instrumented hot path runs in when tracing is disabled.
func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span("mce", 0, "busy", 1, 1)
		tr.SpanArg("mce", 0, "busy", 1, 1, "uops", 7)
		tr.Instant("master", 0, "dispatch", 2)
		tr.InstantArg("master", 0, "dispatch", 2, "tile", 3)
		tr.Merge(nil)
		tr.Reset()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %v per run, want 0", allocs)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Capacity() != 0 || tr.Enabled() {
		t.Fatal("nil tracer reports non-zero state")
	}
	if tr.Events() != nil || tr.Summaries() != nil {
		t.Fatal("nil tracer returned events")
	}
	var buf bytes.Buffer
	if err := tr.Summarize(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Span("p", 0, "busy", int64(i), 1)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.Ts != want {
			t.Errorf("event %d ts = %d, want %d (oldest must be dropped first)", i, ev.Ts, want)
		}
	}
}

func TestMergeAccumulatesEventsAndDrops(t *testing.T) {
	a, b := New(16), New(2)
	a.Span("x", 0, "busy", 0, 1)
	for i := 0; i < 5; i++ {
		b.Span("y", 1, "busy", int64(i), 1)
	}
	a.Merge(b)
	if a.Len() != 3 {
		t.Fatalf("merged Len = %d, want 3 (1 + ring of 2)", a.Len())
	}
	if a.Dropped() != 3 {
		t.Fatalf("merged Dropped = %d, want 3 (inherited from shard)", a.Dropped())
	}
	a.Merge(a) // self-merge must not deadlock or duplicate
	if a.Len() != 3 {
		t.Fatalf("self-merge changed Len to %d", a.Len())
	}
}

// TestWriteJSONDeterministicAcrossInsertionOrder is the canonical-sort
// contract: tracers holding the same event multiset in different insertion
// orders serialize byte-identically.
func TestWriteJSONDeterministicAcrossInsertionOrder(t *testing.T) {
	evs := []Event{
		{Proc: "mce", Tid: 1, Name: "busy", Ph: PhaseSpan, Ts: 3, Dur: 1},
		{Proc: "mce", Tid: 0, Name: "stall", Ph: PhaseSpan, Ts: 3, Dur: 1, ArgKey: "uops", Arg: 0},
		{Proc: "master", Tid: 0, Name: "dispatch", Ph: PhaseInstant, Ts: 1, ArgKey: "tile", Arg: 1},
		{Proc: "decoder", Tid: 0, Name: "window", Ph: PhaseSpan, Ts: 0, Dur: 3, ArgKey: "applied", Arg: 2},
		{Proc: "mce", Tid: 0, Name: "busy", Ph: PhaseSpan, Ts: 4, Dur: 1},
	}
	fwd, rev := New(0), New(0)
	for _, ev := range evs {
		fwd.record(ev)
	}
	for i := len(evs) - 1; i >= 0; i-- {
		rev.record(evs[i])
	}
	var bf, br bytes.Buffer
	if err := fwd.WriteJSON(&bf); err != nil {
		t.Fatal(err)
	}
	if err := rev.WriteJSON(&br); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bf.Bytes(), br.Bytes()) {
		t.Fatalf("insertion order leaked into export:\n%s\nvs\n%s", bf.String(), br.String())
	}
	rep, err := Validate(bf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if rep.Procs != 3 {
		t.Errorf("Procs = %d, want 3", rep.Procs)
	}
	if rep.Tracks != 4 {
		t.Errorf("Tracks = %d, want 4", rep.Tracks)
	}
	if rep.Events != len(evs) {
		t.Errorf("Events = %d, want %d", rep.Events, len(evs))
	}
}

func TestSummariesClassifyBusyStallIdle(t *testing.T) {
	tr := New(0)
	tr.Span("mce", 0, "busy", 0, 3)
	tr.Span("mce", 0, "stall", 3, 2)
	tr.Span("mce", 0, "idle", 5, 5)
	tr.Instant("mce", 0, "cache.replay", 6)
	tr.Span("mce", 1, "busy", 0, 1)
	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("tracks = %d, want 2", len(sums))
	}
	s := sums[0]
	if s.Proc != "mce" || s.Tid != 0 {
		t.Fatalf("first track = %s/%d", s.Proc, s.Tid)
	}
	if s.Busy != 3 || s.Stall != 2 || s.Idle != 5 {
		t.Errorf("busy/stall/idle = %d/%d/%d, want 3/2/5", s.Busy, s.Stall, s.Idle)
	}
	if s.Spans != 3 || s.Instants != 1 {
		t.Errorf("spans/instants = %d/%d, want 3/1", s.Spans, s.Instants)
	}
	if s.First != 0 || s.Last != 10 {
		t.Errorf("range = [%d,%d), want [0,10)", s.First, s.Last)
	}
	var buf bytes.Buffer
	if err := tr.Summarize(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mce/0", "mce/1", "busy%"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSummarizeReportsDrops(t *testing.T) {
	tr := New(1)
	tr.Span("p", 0, "busy", 0, 1)
	tr.Span("p", 0, "busy", 1, 1)
	var buf bytes.Buffer
	if err := tr.Summarize(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped 1 event(s)") {
		t.Errorf("summary does not surface drops:\n%s", buf.String())
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not JSON":          `{"traceEvents":`,
		"no traceEvents":    `{"otherEvents":[]}`,
		"empty":             `{"traceEvents":[]}`,
		"missing ph":        `{"traceEvents":[{"name":"x","pid":1,"tid":0,"ts":1}]}`,
		"missing name":      `{"traceEvents":[{"ph":"X","pid":1,"tid":0,"ts":1,"dur":1}]}`,
		"missing ts":        `{"traceEvents":[{"ph":"i","name":"x","pid":1,"tid":0}]}`,
		"span without dur":  `{"traceEvents":[{"ph":"X","name":"x","pid":1,"tid":0,"ts":1}]}`,
		"negative ts":       `{"traceEvents":[{"ph":"i","name":"x","pid":1,"tid":0,"ts":-1}]}`,
		"non-monotone ts":   `{"traceEvents":[{"ph":"i","name":"a","pid":1,"tid":0,"ts":5},{"ph":"i","name":"b","pid":1,"tid":0,"ts":4}]}`,
		"missing pid":       `{"traceEvents":[{"ph":"i","name":"x","tid":0,"ts":1}]}`,
		"event not objects": `{"traceEvents":[42]}`,
	}
	for label, data := range cases {
		if _, err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: Validate accepted %s", label, data)
		}
	}
	// Separate tracks may interleave timestamps; only per-track order matters.
	ok := `{"traceEvents":[
		{"ph":"M","name":"process_name","args":{"name":"a"}},
		{"ph":"i","name":"a","pid":1,"tid":0,"ts":5},
		{"ph":"i","name":"b","pid":1,"tid":1,"ts":1},
		{"ph":"X","name":"c","pid":2,"tid":0,"ts":0,"dur":0}]}`
	rep, err := Validate([]byte(ok))
	if err != nil {
		t.Fatalf("Validate rejected valid interleaving: %v", err)
	}
	if rep.Procs != 2 || rep.Tracks != 3 || rep.Events != 3 {
		t.Errorf("report = %+v, want 2 procs, 3 tracks, 3 events", rep)
	}
}

// TestConcurrentRecording hammers one tracer from many goroutines; run under
// -race (make race) this pins the locking of record/Events/Merge/Summarize.
func TestConcurrentRecording(t *testing.T) {
	tr := New(1 << 12)
	dst := New(1 << 14)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := New(256)
			for i := 0; i < 400; i++ {
				tr.SpanArg("mce", w, "busy", int64(i), 1, "uops", int64(i))
				shard.Instant("master", w, "dispatch", int64(i))
			}
			dst.Merge(shard)
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = tr.Events()
			_ = tr.Summaries()
		}
	}()
	wg.Wait()
	<-done
	if got := tr.Len() + int(tr.Dropped()); got != 8*400 {
		t.Errorf("events+drops = %d, want %d", got, 8*400)
	}
	if dst.Len() != 8*256 {
		t.Errorf("merged len = %d, want %d", dst.Len(), 8*256)
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	tr := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.SpanArg("mce", 0, "busy", int64(i), 1, "uops", 42)
	}
}

func BenchmarkSpanNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.SpanArg("mce", 0, "busy", int64(i), 1, "uops", 42)
	}
}
