package tracing

import (
	"encoding/json"
	"fmt"
)

// ValidateReport summarizes a validated trace file.
type ValidateReport struct {
	// Events counts non-metadata trace events.
	Events int
	// Procs counts distinct processes (component classes) carrying events.
	Procs int
	// Tracks counts distinct (pid, tid) pairs carrying events.
	Tracks int
}

// jsonEvent is the subset of the Chrome trace-event schema the validator
// cares about. Pointer fields distinguish "absent" from zero.
type jsonEvent struct {
	Ph   string   `json:"ph"`
	Name string   `json:"name"`
	Pid  *int64   `json:"pid"`
	Tid  *int64   `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

// Validate checks data against the trace-event JSON schema as this package
// emits it (and as Perfetto requires it): a top-level object with a
// traceEvents array; every event carries ph and name; every non-metadata
// event carries pid, tid and a non-negative ts; span durations are
// non-negative; and within each (pid, tid) track the ts sequence is
// non-decreasing in file order. CI's trace-smoke step runs this (via
// tools/tracecheck) over a real questsim trace.
func Validate(data []byte) (ValidateReport, error) {
	var rep ValidateReport
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return rep, fmt.Errorf("tracing: not a JSON trace object: %w", err)
	}
	if file.TraceEvents == nil {
		return rep, fmt.Errorf("tracing: missing traceEvents array")
	}
	type track struct{ pid, tid int64 }
	lastTs := map[track]float64{}
	procs := map[int64]bool{}
	for i, raw := range file.TraceEvents {
		var ev jsonEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return rep, fmt.Errorf("tracing: event %d malformed: %w", i, err)
		}
		if ev.Ph == "" {
			return rep, fmt.Errorf("tracing: event %d has no ph", i)
		}
		if ev.Name == "" {
			return rep, fmt.Errorf("tracing: event %d has no name", i)
		}
		if ev.Ph == "M" {
			continue // metadata carries no timestamp
		}
		if ev.Pid == nil || ev.Tid == nil {
			return rep, fmt.Errorf("tracing: event %d (%s) lacks pid/tid", i, ev.Name)
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return rep, fmt.Errorf("tracing: event %d (%s) has no non-negative ts", i, ev.Name)
		}
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			return rep, fmt.Errorf("tracing: span %d (%s) has no non-negative dur", i, ev.Name)
		}
		k := track{*ev.Pid, *ev.Tid}
		if prev, ok := lastTs[k]; ok && *ev.Ts < prev {
			return rep, fmt.Errorf("tracing: track (%d,%d) ts not monotone at event %d (%s): %g after %g",
				k.pid, k.tid, i, ev.Name, *ev.Ts, prev)
		}
		lastTs[k] = *ev.Ts
		procs[*ev.Pid] = true
		rep.Events++
	}
	rep.Procs = len(procs)
	rep.Tracks = len(lastTs)
	if rep.Events == 0 {
		return rep, fmt.Errorf("tracing: trace contains no events")
	}
	return rep, nil
}
