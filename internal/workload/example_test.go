package workload_test

import (
	"fmt"
	"math"

	"quest/internal/workload"
)

// ExampleEstimator derives the paper's evaluation quantities for one
// workload at the default operating point.
func ExampleEstimator() {
	est := workload.NewEstimator()
	e := est.Estimate(workload.GSE)
	fmt.Println("code distance:", e.Distance)
	fmt.Println("distillation rounds:", e.DistillRounds)
	fmt.Printf("QECC overhead: 10^%.1f\n", math.Log10(e.QECCOverhead()))
	fmt.Printf("QuEST savings: 10^%.1f (10^%.1f with caching)\n",
		math.Log10(e.SavingsQuEST()), math.Log10(e.SavingsQuESTCache()))
	// Output:
	// code distance: 13
	// distillation rounds: 2
	// QECC overhead: 10^8.3
	// QuEST savings: 10^5.5 (10^8.0 with caching)
}

// ExampleSyntheticProgram generates an executable slice of a workload for
// the cycle-level machine.
func ExampleSyntheticProgram() {
	p := workload.SyntheticProgram(workload.QLS, 1000)
	s := p.Stats()
	fmt.Println("instructions:", s.Total)
	fmt.Println("register:", p.NumLogical, "logical qubits")
	fmt.Println("T fraction near profile:", math.Abs(s.TFraction-workload.QLS.TFraction) < 0.1)
	// Output:
	// instructions: 1000
	// register: 8 logical qubits
	// T fraction near profile: true
}
