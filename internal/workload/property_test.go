package workload

import (
	"testing"
	"testing/quick"
)

// TestPropertyDistanceMonotoneInGates: more gates never shrink the required
// code distance.
func TestPropertyDistanceMonotoneInGates(t *testing.T) {
	f := func(gRawA, gRawB uint16, qRaw uint8) bool {
		q := 10 + int(qRaw)%2000
		ga := 1e4 * float64(1+gRawA)
		gb := 1e4 * float64(1+gRawB)
		if ga > gb {
			ga, gb = gb, ga
		}
		pa := Profile{Name: "a", LogicalQubits: q, LogicalGates: ga, TFraction: 0.25, ILP: 2}
		pb := Profile{Name: "b", LogicalQubits: q, LogicalGates: gb, TFraction: 0.25, ILP: 2}
		return CodeDistance(pa, DefaultPhys) <= CodeDistance(pb, DefaultPhys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEstimateOrderings: for any valid profile, the architecture
// orderings hold — baseline > QuEST > QuEST+cache traffic, QECC dominates,
// and all derived quantities are positive and finite.
func TestPropertyEstimateOrderings(t *testing.T) {
	est := NewEstimator()
	f := func(qRaw uint8, gRaw uint16, tRaw, iRaw uint8) bool {
		p := Profile{
			Name:          "fuzz",
			LogicalQubits: 10 + int(qRaw)%3000,
			LogicalGates:  1e5 * float64(1+gRaw),
			TFraction:     0.2 + float64(tRaw%16)/100,
			ILP:           2 + float64(iRaw%11)/10,
		}
		e := est.Estimate(p)
		if !(e.BaselineBytes > e.QuESTBytes && e.QuESTBytes > e.QuESTCacheBytes) {
			return false
		}
		if e.QECCInstrs <= e.LogicalInstrs {
			return false
		}
		if e.Distance < 3 || e.Distance%2 == 0 {
			return false
		}
		if e.TotalPhysical <= 0 || e.RuntimeSec <= 0 || e.Factories < 1 {
			return false
		}
		if e.SavingsQuEST() <= 1 || e.SavingsQuESTCache() <= e.SavingsQuEST() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertySavingsScaleWithQubits: with gates fixed, adding logical
// qubits (more physical hardware doing QECC) never reduces QuEST's savings.
func TestPropertySavingsScaleWithQubits(t *testing.T) {
	est := NewEstimator()
	f := func(qa, qb uint8) bool {
		a := 10 + int(qa)%1000
		b := 10 + int(qb)%1000
		if a > b {
			a, b = b, a
		}
		mk := func(q int) Estimate {
			return est.Estimate(Profile{
				Name: "fuzz", LogicalQubits: q, LogicalGates: 1e9,
				TFraction: 0.25, ILP: 2,
			})
		}
		return mk(a).SavingsQuEST() <= mk(b).SavingsQuEST()*1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
