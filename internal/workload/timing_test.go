package workload

import (
	"math"
	"math/rand"
	"testing"

	"quest/internal/awg"
	"quest/internal/clifford"
	"quest/internal/surface"
)

// TestTEccEmergesFromGateLatencies is a cross-model validation: executing
// one Steane QECC cycle on the timed execution unit, using only Table 1's
// per-gate latencies, must reproduce Table 1's *measured* T_ecc column to
// within ~10% for every technology. The paper's round time is not an
// independent knob — it is the schedule critical path, and our simulator
// recovers it.
func TestTEccEmergesFromGateLatencies(t *testing.T) {
	lat := surface.NewPlanar(3)
	words := surface.CompileCycle(lat, surface.Steane, nil)
	for _, tech := range Techs() {
		tm := awg.Timing{
			PrepNs:  tech.TPrep,
			Gate1Ns: tech.T1,
			MeasNs:  tech.TMeas,
			CNOTNs:  tech.TCNOT,
			IdleNs:  tech.T1,
		}
		tb := clifford.New(lat.NumQubits(), rand.New(rand.NewSource(1)))
		u := awg.New(tb, nil)
		u.MeasSink = func(int, int) {}
		u.SetTiming(tm)
		for _, w := range words {
			u.ExecuteWord(w)
		}
		got := u.ElapsedNs()
		rel := math.Abs(got-tech.TEcc) / tech.TEcc
		if rel > 0.10 {
			t.Errorf("%s: simulated QECC cycle %vns vs Table 1 T_ecc %vns (%.0f%% off)",
				tech.Name, got, tech.TEcc, 100*rel)
		}
	}
}
