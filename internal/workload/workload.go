// Package workload is this repository's stand-in for the QuRE toolbox +
// ScaffCC pipeline the paper evaluates with (§6): an analytical resource
// estimator that, from a workload's logical-level profile (qubit count, gate
// count, T fraction, parallelism) and a technology/QECC operating point,
// derives the code distance, physical qubit counts, T-factory provisioning,
// runtimes, and the instruction bandwidth of the three architectures the
// paper compares — software-managed baseline, QuEST with hardware QECC, and
// QuEST with the logical instruction cache.
//
// The derivations follow the paper's own sources: Fowler et al.'s appendix-M
// surface-code costing (12.5·d² physical qubits per logical qubit, logical
// error suppression per round Pl ≈ A·(p/p_th)^((d+1)/2)) and the QuRE
// convention that a logical operation occupies ~d error-correction rounds.
// Workload profiles are calibrated constants documented per benchmark.
package workload

import (
	"fmt"
	"math"

	"quest/internal/compiler"
	"quest/internal/distill"
	"quest/internal/isa"
	"quest/internal/surface"
)

// Tech holds the technology parameters of the paper's Table 1. Times in
// nanoseconds.
type Tech struct {
	Name  string
	TPrep float64
	T1    float64
	TMeas float64
	TCNOT float64
	TEcc  float64 // one error-correction round
}

// The three operating points of Table 1.
var (
	ExperimentalS = Tech{Name: "Experimental_S", TPrep: 1000, T1: 25, TMeas: 1000, TCNOT: 100, TEcc: 2420}
	ProjectedF    = Tech{Name: "Projected_F", TPrep: 40, T1: 10, TMeas: 35, TCNOT: 80, TEcc: 405}
	ProjectedD    = Tech{Name: "Projected_D", TPrep: 40, T1: 5, TMeas: 35, TCNOT: 20, TEcc: 165}
)

// Techs lists the Table 1 operating points in presentation order.
func Techs() []Tech { return []Tech{ExperimentalS, ProjectedF, ProjectedD} }

// Surface-code error model constants (Fowler et al.): threshold and the
// logical error prefactor.
const (
	Threshold      = 1e-2
	LogicalErrorA  = 0.03
	DefaultPhys    = 1e-4 // the paper's headline physical error rate
	TargetFailure  = 0.5  // acceptable whole-run failure probability
	PhysInstrBytes = 1    // byte-sized physical instructions (§3.3)
	QubitRateHz    = 100e6
	// CacheRunBatch is the replay count one LCacheRun token covers (its
	// 6-bit Arg field).
	CacheRunBatch = 63
)

// Profile is a workload's logical-level footprint.
type Profile struct {
	Name string
	// Description summarizes what the benchmark computes.
	Description string
	// LogicalQubits is the algorithm's logical register size.
	LogicalQubits int
	// LogicalGates is the total logical gate count.
	LogicalGates float64
	// TFraction is the share of T gates in the stream (25-30% per §5.2).
	TFraction float64
	// ILP is the average number of logical instructions issued in parallel
	// (two to three per §5.2).
	ILP float64
}

// The seven benchmarks of §6.1. Logical-level footprints are calibrated
// constants: qubit counts follow the algorithms' register sizes and gate
// counts the published asymptotic costs at the paper's problem sizes, chosen
// so the derived overheads land in the ranges the paper reports (Figs 2, 6,
// 13). See DESIGN.md §1 for the substitution rationale.
var (
	BWT = Profile{
		Name:          "BWT",
		Description:   "quantum random walk through a binary welded tree (n=300)",
		LogicalQubits: 100, LogicalGates: 2e6, TFraction: 0.28, ILP: 2.5,
	}
	BF = Profile{
		Name:          "BF",
		Description:   "Boolean formula evaluation: best strategy for hex",
		LogicalQubits: 1000, LogicalGates: 5e13, TFraction: 0.30, ILP: 2.0,
	}
	GSE = Profile{
		Name:          "GSE",
		Description:   "ground state estimation of the Fe2S2 molecule",
		LogicalQubits: 2000, LogicalGates: 3e10, TFraction: 0.30, ILP: 2.5,
	}
	FeMoCo = Profile{
		Name:          "FeMoCo",
		Description:   "ground state of the nitrogenase FeMo cofactor active site",
		LogicalQubits: 4000, LogicalGates: 1e14, TFraction: 0.30, ILP: 2.0,
	}
	QLS = Profile{
		Name:          "QLS",
		Description:   "quantum linear system solver (HHL) for Ax=b",
		LogicalQubits: 500, LogicalGates: 2e8, TFraction: 0.25, ILP: 2.0,
	}
	Shor1024 = ShorProfile(1024)
	TFP      = Profile{
		Name:          "TFP",
		Description:   "triangle finding in a dense graph",
		LogicalQubits: 30, LogicalGates: 2e5, TFraction: 0.28, ILP: 2.0,
	}
)

// Suite returns the seven evaluation workloads in the paper's order.
func Suite() []Profile {
	return []Profile{BWT, BF, GSE, FeMoCo, QLS, Shor1024, TFP}
}

// ShorProfile returns the profile for factoring an n-bit modulus: 2n+3
// logical qubits (Beauregard circuit) and ~40·n³ logical gates (modular
// exponentiation), the scaling behind Figure 2.
func ShorProfile(nBits int) Profile {
	if nBits < 8 {
		panic(fmt.Sprintf("workload: Shor modulus %d bits too small", nBits))
	}
	n := float64(nBits)
	return Profile{
		Name:          fmt.Sprintf("SHOR-%d", nBits),
		Description:   fmt.Sprintf("Shor factoring of a %d-bit modulus", nBits),
		LogicalQubits: 2*nBits + 3,
		LogicalGates:  40 * n * n * n,
		TFraction:     0.25,
		ILP:           2.5,
	}
}

// Validate checks a profile is usable.
func (p Profile) Validate() error {
	if p.Name == "" || p.LogicalQubits <= 0 || p.LogicalGates <= 0 {
		return fmt.Errorf("workload: incomplete profile %+v", p)
	}
	if p.TFraction < 0 || p.TFraction > 1 {
		return fmt.Errorf("workload: %s T fraction %v outside [0,1]", p.Name, p.TFraction)
	}
	if p.ILP < 1 {
		return fmt.Errorf("workload: %s ILP %v below 1", p.Name, p.ILP)
	}
	return nil
}

// LogicalErrorPerRound returns the per-logical-qubit, per-round failure
// probability of a distance-d code at physical rate p.
func LogicalErrorPerRound(p float64, d int) float64 {
	if p <= 0 || p >= Threshold {
		panic(fmt.Sprintf("workload: physical rate %v outside (0, threshold)", p))
	}
	return LogicalErrorA * math.Pow(p/Threshold, float64(d+1)/2)
}

// CodeDistance returns the smallest odd distance whose whole-run failure
// probability stays below TargetFailure for the profile.
func CodeDistance(p Profile, physRate float64) int {
	rounds := p.LogicalGates / p.ILP // per-logical-op rounds multiply below
	for d := 3; d <= 101; d += 2 {
		perRound := LogicalErrorPerRound(physRate, d)
		totalRounds := rounds * float64(d) // each logical op ≈ d rounds
		failure := perRound * float64(p.LogicalQubits) * totalRounds
		if failure < TargetFailure {
			return d
		}
	}
	panic(fmt.Sprintf("workload: no distance ≤ 101 achieves target for %s at p=%v", p.Name, physRate))
}

// Estimate is the full resource and bandwidth derivation for one workload at
// one operating point.
type Estimate struct {
	Profile  Profile
	Tech     Tech
	Schedule surface.Schedule
	PhysRate float64

	// Derived code parameters.
	Distance      int
	DistillRounds int
	Factories     int
	FactoryQubits int
	DataQubits    int
	TotalPhysical int

	// Execution shape.
	ECCRounds  float64 // total QECC rounds over the run
	RuntimeSec float64

	// Instruction counts over the whole run.
	QECCInstrs     float64 // physical QECC µops, data patches + T-factories
	QECCDataInstrs float64 // physical QECC µops on the data patches alone
	LogicalInstrs  float64 // the application's own logical instructions
	DistillInstrs  float64 // logical instructions spent in T-factories
	SyncTokens     float64

	// Bytes over the global (host→control processor) bus per architecture.
	BaselineBytes   float64
	QuESTBytes      float64
	QuESTCacheBytes float64
}

// Estimator fixes the operating point shared across workloads.
type Estimator struct {
	Tech     Tech
	Schedule surface.Schedule
	PhysRate float64
}

// NewEstimator returns an estimator at the paper's default operating point
// (Projected_D, Steane syndrome, p=1e-4) with the given overrides applied by
// the caller mutating fields.
func NewEstimator() *Estimator {
	return &Estimator{Tech: ProjectedD, Schedule: surface.Steane, PhysRate: DefaultPhys}
}

// Estimate derives the full resource picture for one profile.
func (e *Estimator) Estimate(p Profile) Estimate {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	d := CodeDistance(p, e.PhysRate)
	est := Estimate{
		Profile: p, Tech: e.Tech, Schedule: e.Schedule, PhysRate: e.PhysRate,
		Distance: d,
	}

	// Magic-state pipeline: the run's total T-gate failure budget divides
	// over the gate count, so the distilled-state target depends on the
	// algorithm, not the code distance — which is why the distillation
	// overhead stays flat across physical error rates (§7, Figure 15).
	target := TargetFailure / p.LogicalGates
	raw := distill.RawStateError(e.PhysRate)
	rounds, err := distill.RoundsNeeded(raw, target)
	if err != nil {
		panic(err)
	}
	est.DistillRounds = rounds

	// Demand: T gates per QECC round. A logical op occupies ~d rounds and
	// ILP ops run in parallel, so the machine retires ILP/d logical ops per
	// round, a TFraction of which need a magic state.
	tPerRound := p.TFraction * p.ILP / float64(d)
	// One factory pipelines one 15-to-1 round per RoundInstructionCount/ILP
	// logical-op slots ≈ that many ·d rounds... its latency in rounds:
	latency := int(math.Ceil(float64(distill.RoundInstructionCount) * float64(d) / p.ILP))
	est.Factories = distill.FactoriesNeeded(tPerRound, latency)
	est.FactoryQubits = est.Factories * distill.LogicalQubitsPerFactory(rounds) *
		int(surface.PhysicalQubitsPerLogical(d))

	est.DataQubits = int(float64(p.LogicalQubits) * surface.PhysicalQubitsPerLogical(d))
	est.TotalPhysical = est.DataQubits + est.FactoryQubits

	// Run length: LogicalGates issued ILP at a time, d rounds each.
	est.ECCRounds = p.LogicalGates / p.ILP * float64(d)
	est.RuntimeSec = est.ECCRounds * e.Tech.TEcc * 1e-9

	// Instruction counts. Every physical qubit gets Depth µops per round.
	est.QECCInstrs = float64(est.TotalPhysical) * float64(e.Schedule.Depth) * est.ECCRounds
	est.QECCDataInstrs = float64(est.DataQubits) * float64(e.Schedule.Depth) * est.ECCRounds
	est.LogicalInstrs = p.LogicalGates
	est.DistillInstrs = p.LogicalGates * p.TFraction * distill.InstructionsPerState(rounds)
	// One synchronization token per issue group (ILP logical instructions).
	est.SyncTokens = p.LogicalGates / p.ILP

	// Global bus bytes per architecture (§7). Baseline: the compiler
	// streams everything as physical instructions — the logical program and
	// distillation expand transversally over a logical patch (~d² data
	// qubits each) and all QECC µops ship explicitly.
	physPerLogical := float64(d) * float64(d)
	est.BaselineBytes = (est.QECCInstrs +
		(est.LogicalInstrs+est.DistillInstrs)*physPerLogical) * PhysInstrBytes
	// QuEST: QECC never crosses the bus; logical + distillation instructions
	// and sync tokens do, at 2 bytes each.
	est.QuESTBytes = (est.LogicalInstrs + est.DistillInstrs + est.SyncTokens) *
		float64(isa.LogicalInstrBytes)
	// QuEST + cache: each distillation round body ships once and replays
	// from the MCE instruction cache; an LCacheRun token's 6-bit repeat
	// field batches up to CacheRunBatch replays, so only batched run tokens
	// and the application stream remain on the bus.
	replays := est.DistillInstrs / float64(distill.RoundInstructionCount)
	cacheTraffic := float64(distill.RoundInstructionCount)*float64(isa.LogicalInstrBytes) + // one-time load
		math.Ceil(replays/CacheRunBatch)*float64(isa.LogicalInstrBytes)
	est.QuESTCacheBytes = (est.LogicalInstrs+est.SyncTokens)*float64(isa.LogicalInstrBytes) + cacheTraffic
	return est
}

// QECCOverhead is Figure 6's ratio: QECC physical instructions on the
// algorithm's data patches per useful logical instruction (the T-factory
// share is reported separately by Figure 13's TFactoryOverhead).
func (e Estimate) QECCOverhead() float64 { return e.QECCDataInstrs / e.LogicalInstrs }

// TFactoryOverhead is Figure 13's ratio: distillation instructions over the
// application's logical instructions.
func (e Estimate) TFactoryOverhead() float64 { return e.DistillInstrs / e.LogicalInstrs }

// BaselineBandwidth returns the software-managed architecture's sustained
// global-bus bandwidth in bytes/sec.
func (e Estimate) BaselineBandwidth() float64 { return e.BaselineBytes / e.RuntimeSec }

// QuESTBandwidth returns the hardware-QECC architecture's bandwidth.
func (e Estimate) QuESTBandwidth() float64 { return e.QuESTBytes / e.RuntimeSec }

// QuESTCacheBandwidth returns the bandwidth with logical caching enabled.
func (e Estimate) QuESTCacheBandwidth() float64 { return e.QuESTCacheBytes / e.RuntimeSec }

// SavingsQuEST is Figure 14's first bar: baseline over QuEST traffic.
func (e Estimate) SavingsQuEST() float64 { return e.BaselineBytes / e.QuESTBytes }

// SavingsQuESTCache is Figure 14's second bar: baseline over cached traffic.
func (e Estimate) SavingsQuESTCache() float64 { return e.BaselineBytes / e.QuESTCacheBytes }

// NaiveBandwidth is the §3.3 back-of-envelope: every physical qubit consumes
// byte-sized instructions at its 100 MHz operating rate — the Figure 2
// model.
func NaiveBandwidth(totalPhysicalQubits int) float64 {
	return float64(totalPhysicalQubits) * PhysInstrBytes * QubitRateHz
}

// SyntheticProgram generates a deterministic logical program whose gate mix
// matches the profile: TFraction of T gates, roughly a third two-qubit
// braids, the rest single-qubit Cliffords, over min(LogicalQubits, 8)
// register qubits. It ties the analytical profile to the executable machine:
// scheduling the synthetic program recovers an ILP in the profile's band,
// and running a slice of it on the cycle-level machine exercises exactly the
// traffic shape the estimator prices.
func SyntheticProgram(p Profile, instrs int) *compiler.Program {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if instrs < 1 {
		panic(fmt.Sprintf("workload: non-positive instruction count %d", instrs))
	}
	n := p.LogicalQubits
	if n > 8 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	prog := compiler.NewProgram(n)
	// Deterministic low-discrepancy walk over qubits and op classes.
	state := uint64(0x9e3779b97f4a7c15)
	next := func(mod int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(mod))
	}
	tEvery := int(1 / p.TFraction)
	for i := 0; i < instrs; i++ {
		q := next(n)
		switch {
		case tEvery > 0 && i%tEvery == tEvery-1:
			prog.T(q)
		case i%3 == 1:
			t := (q + 1 + next(n-1)) % n
			prog.CNOT(q, t)
		case i%2 == 0:
			prog.H(q)
		default:
			prog.S(q)
		}
	}
	return prog
}
