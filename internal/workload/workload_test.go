package workload

import (
	"math"
	"testing"

	"quest/internal/sched"
	"quest/internal/surface"
)

func TestTable1Constants(t *testing.T) {
	// Table 1 values must be transcribed exactly.
	if ExperimentalS.TEcc != 2420 || ProjectedF.TEcc != 405 || ProjectedD.TEcc != 165 {
		t.Error("T_ecc values wrong")
	}
	if ProjectedD.T1 != 5 || ProjectedF.T1 != 10 || ExperimentalS.T1 != 25 {
		t.Error("t1 values wrong")
	}
	if ExperimentalS.TCNOT != 100 || ProjectedF.TCNOT != 80 || ProjectedD.TCNOT != 20 {
		t.Error("tCNOT values wrong")
	}
	if len(Techs()) != 3 {
		t.Error("Techs incomplete")
	}
}

func TestSuiteProfilesValid(t *testing.T) {
	suite := Suite()
	if len(suite) != 7 {
		t.Fatalf("suite has %d workloads, want 7", len(suite))
	}
	names := map[string]bool{}
	for _, p := range suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate workload %s", p.Name)
		}
		names[p.Name] = true
		if p.TFraction < 0.2 || p.TFraction > 0.35 {
			t.Errorf("%s: T fraction %v outside the paper's 25-30%% band", p.Name, p.TFraction)
		}
		if p.ILP < 2 || p.ILP > 3 {
			t.Errorf("%s: ILP %v outside the paper's 2-3 band", p.Name, p.ILP)
		}
	}
}

func TestProfileValidateRejections(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", LogicalQubits: 0, LogicalGates: 1, ILP: 2},
		{Name: "x", LogicalQubits: 1, LogicalGates: 1, TFraction: 2, ILP: 2},
		{Name: "x", LogicalQubits: 1, LogicalGates: 1, TFraction: 0.2, ILP: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestShorProfileScaling(t *testing.T) {
	s128 := ShorProfile(128)
	s1024 := ShorProfile(1024)
	if s128.LogicalQubits != 259 || s1024.LogicalQubits != 2051 {
		t.Errorf("Shor qubits: %d, %d", s128.LogicalQubits, s1024.LogicalQubits)
	}
	// Cubic gate scaling: 8x bits → 512x gates.
	if r := s1024.LogicalGates / s128.LogicalGates; math.Abs(r-512) > 1 {
		t.Errorf("gate scaling ratio = %v, want 512", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("tiny modulus accepted")
		}
	}()
	ShorProfile(4)
}

func TestLogicalErrorModel(t *testing.T) {
	// Suppression: each +2 of distance multiplies error by p/p_th.
	p := 1e-4
	r := LogicalErrorPerRound(p, 5) / LogicalErrorPerRound(p, 3)
	if math.Abs(r-p/Threshold) > 1e-15 {
		t.Errorf("suppression ratio = %v, want %v", r, p/Threshold)
	}
	defer func() {
		if recover() == nil {
			t.Error("above-threshold rate accepted")
		}
	}()
	LogicalErrorPerRound(0.02, 3)
}

func TestCodeDistanceMonotone(t *testing.T) {
	// Bigger workloads need bigger distances; worse physical rates too.
	small := Profile{Name: "s", LogicalQubits: 10, LogicalGates: 1e4, TFraction: 0.25, ILP: 2}
	big := Profile{Name: "b", LogicalQubits: 10000, LogicalGates: 1e14, TFraction: 0.25, ILP: 2}
	ds, db := CodeDistance(small, DefaultPhys), CodeDistance(big, DefaultPhys)
	if ds >= db {
		t.Errorf("distances: small %d, big %d", ds, db)
	}
	dWorse := CodeDistance(big, 1e-3)
	dBetter := CodeDistance(big, 1e-5)
	if !(dBetter < db && db < dWorse) {
		t.Errorf("distance vs rate: %d %d %d", dBetter, db, dWorse)
	}
	if ds%2 != 1 || db%2 != 1 {
		t.Error("distances must be odd")
	}
}

func TestShor1024LandsInPaperRegime(t *testing.T) {
	// §1/Figure 2: factoring 1024-bit needs millions of physical qubits and
	// ~100 TB/s of instruction bandwidth.
	est := NewEstimator().Estimate(Shor1024)
	if est.TotalPhysical < 1e6 || est.TotalPhysical > 5e7 {
		t.Errorf("Shor-1024 physical qubits = %d, want millions", est.TotalPhysical)
	}
	bw := NaiveBandwidth(est.TotalPhysical)
	if bw < 1e13 || bw > 5e15 {
		t.Errorf("Shor-1024 naive bandwidth = %v B/s, want ~100 TB/s regime", bw)
	}
}

func TestFigure2LinearScaling(t *testing.T) {
	// Bandwidth scales linearly with physical qubit count across Shor sizes.
	e := NewEstimator()
	prev := 0.0
	for _, bits := range []int{128, 256, 512, 1024} {
		est := e.Estimate(ShorProfile(bits))
		bw := NaiveBandwidth(est.TotalPhysical)
		if bw <= prev {
			t.Errorf("bandwidth not increasing at %d bits", bits)
		}
		prev = bw
		perQubit := bw / float64(est.TotalPhysical)
		if perQubit != PhysInstrBytes*QubitRateHz {
			t.Errorf("per-qubit bandwidth = %v", perQubit)
		}
	}
}

func TestFigure6OverheadBand(t *testing.T) {
	// "QECC requires an instruction overhead of 4 to 9 orders of magnitude"
	// and "almost 99.999% bandwidth is dedicated to QECC".
	e := NewEstimator()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range Suite() {
		est := e.Estimate(p)
		oom := math.Log10(est.QECCOverhead())
		if oom < lo {
			lo = oom
		}
		if oom > hi {
			hi = oom
		}
		frac := est.QECCInstrs / (est.QECCInstrs + est.LogicalInstrs)
		if frac < 0.9999 {
			t.Errorf("%s: QECC fraction %v below 99.99%%", p.Name, frac)
		}
	}
	// Paper band: 4-9 orders. Our calibration spans ≈10^5.3..10^9 — the low
	// end sits a little above the paper's because our failure-budget model
	// floors the smallest workload's distance at 5 (see EXPERIMENTS.md).
	if lo < 4 || lo > 6.5 {
		t.Errorf("min overhead 10^%.1f outside the 4-9 band start", lo)
	}
	if hi < 8 || hi > 10 {
		t.Errorf("max overhead 10^%.1f outside the 4-9 band end", hi)
	}
	if hi-lo < 2.5 {
		t.Errorf("overhead spread only %.1f orders — workloads too uniform", hi-lo)
	}
}

func TestFigure13TFactoryOverheadBand(t *testing.T) {
	// T-factory instructions dominate logical traffic by 10x-10000x.
	e := NewEstimator()
	for _, p := range Suite() {
		est := e.Estimate(p)
		ov := est.TFactoryOverhead()
		if ov < 10 || ov > 1e5 {
			t.Errorf("%s: T-factory overhead %v outside plausible band", p.Name, ov)
		}
		if est.DistillRounds < 1 {
			t.Errorf("%s: no distillation rounds at p=1e-4", p.Name)
		}
		if est.Factories < 1 {
			t.Errorf("%s: no factories provisioned", p.Name)
		}
	}
}

func TestFigure14SavingsBands(t *testing.T) {
	// QuEST alone: at least five orders of magnitude. With caching: around
	// eight (the paper's headline).
	e := NewEstimator()
	var s1s, s2s []float64
	for _, p := range Suite() {
		est := e.Estimate(p)
		s1 := math.Log10(est.SavingsQuEST())
		s2 := math.Log10(est.SavingsQuESTCache())
		s1s = append(s1s, s1)
		s2s = append(s2s, s2)
		if s1 < 4.6 {
			t.Errorf("%s: QuEST savings only 10^%.1f, want ≥ ~10^5", p.Name, s1)
		}
		if s2-s1 < 1.1 || s2-s1 > 4 {
			t.Errorf("%s: cache adds 10^%.1f, want ~2-3 orders", p.Name, s2-s1)
		}
		if s2 < 5.8 || s2 > 10.5 {
			t.Errorf("%s: total savings 10^%.1f, want ≈8 orders", p.Name, s2)
		}
	}
	// The large workloads (most of the suite) must clear the paper's
	// headline bands: ≥10^5 from hardware QECC, ≈10^8 with caching.
	ge := func(xs []float64, th float64) int {
		n := 0
		for _, x := range xs {
			if x >= th {
				n++
			}
		}
		return n
	}
	if ge(s1s, 5) < 5 {
		t.Errorf("only %d/7 workloads reach 10^5 QuEST savings: %v", ge(s1s, 5), s1s)
	}
	if ge(s2s, 7.8) < 3 {
		t.Errorf("only %d/7 workloads reach ≈10^8 total savings: %v", ge(s2s, 7.8), s2s)
	}
}

func TestFigure15ErrorRateSensitivity(t *testing.T) {
	// Lower physical error rate → smaller distance → fewer physical qubits →
	// less QECC bloat → smaller savings; distillation overhead stays ~flat.
	rates := []float64{1e-3, 1e-4, 1e-5}
	var savings, distOv []float64
	for _, r := range rates {
		e := NewEstimator()
		e.PhysRate = r
		est := e.Estimate(GSE)
		savings = append(savings, est.SavingsQuEST())
		distOv = append(distOv, est.TFactoryOverhead())
	}
	if !(savings[0] > savings[1] && savings[1] > savings[2]) {
		t.Errorf("savings not decreasing with error rate: %v", savings)
	}
	// Distillation overhead varies far less than QECC savings do.
	distSpread := distOv[0] / distOv[2]
	savSpread := savings[0] / savings[2]
	if distSpread > savSpread {
		t.Errorf("distill overhead spread %v exceeds savings spread %v", distSpread, savSpread)
	}
}

func TestEstimateInternalConsistency(t *testing.T) {
	e := NewEstimator()
	est := e.Estimate(QLS)
	if est.TotalPhysical != est.DataQubits+est.FactoryQubits {
		t.Error("qubit partition broken")
	}
	if est.RuntimeSec <= 0 || est.ECCRounds <= 0 {
		t.Error("non-positive runtime")
	}
	if est.BaselineBytes <= est.QuESTBytes || est.QuESTBytes <= est.QuESTCacheBytes {
		t.Error("architecture ordering violated")
	}
	// Bandwidths = bytes/runtime.
	if math.Abs(est.BaselineBandwidth()-est.BaselineBytes/est.RuntimeSec) > 1e-6 {
		t.Error("baseline bandwidth inconsistent")
	}
	if est.Distance < 3 {
		t.Error("distance below minimum")
	}
}

func TestSyndromeChoiceBarelyMovesSavings(t *testing.T) {
	// §7: "both the technology parameters and the syndrome design have
	// little impact on bandwidth savings".
	for _, p := range []Profile{BWT, GSE, Shor1024} {
		var vals []float64
		for _, sched := range []surface.Schedule{surface.Steane, surface.Shor} {
			for _, tech := range Techs() {
				e := NewEstimator()
				e.Schedule = sched
				e.Tech = tech
				vals = append(vals, math.Log10(e.Estimate(p).SavingsQuESTCache()))
			}
		}
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi-lo > 0.3 {
			t.Errorf("%s: savings vary by 10^%.2f across configs, want nearly constant", p.Name, hi-lo)
		}
	}
}

func TestEstimatePanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid profile accepted")
		}
	}()
	NewEstimator().Estimate(Profile{})
}

func TestSyntheticProgramMatchesProfile(t *testing.T) {
	for _, p := range Suite() {
		prog := SyntheticProgram(p, 3000)
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := prog.Stats()
		if s.Total != 3000 {
			t.Fatalf("%s: %d instructions", p.Name, s.Total)
		}
		if math.Abs(s.TFraction-p.TFraction) > 0.08 {
			t.Errorf("%s: synthetic T fraction %.3f vs profile %.3f", p.Name, s.TFraction, p.TFraction)
		}
		// Deterministic.
		again := SyntheticProgram(p, 3000)
		for i := range prog.Instrs {
			if prog.Instrs[i] != again.Instrs[i] {
				t.Fatalf("%s: nondeterministic at %d", p.Name, i)
			}
		}
	}
	expectPanic := func() {
		defer func() {
			if recover() == nil {
				t.Error("zero instrs accepted")
			}
		}()
		SyntheticProgram(BWT, 0)
	}
	expectPanic()
}

func TestSyntheticProgramILPInBand(t *testing.T) {
	// The schedule of a synthetic workload recovers the paper's 2-3 ILP band
	// — the estimator's ILP parameter is not an arbitrary knob.
	prog := SyntheticProgram(GSE, 2000)
	res, err := sched.Schedule(prog, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ILP < 1.8 || res.ILP > 3.6 {
		t.Errorf("synthetic ILP %.2f far from the 2-3 band", res.ILP)
	}
}
