// Guard for the Makefile `clean` recipe. An earlier version ran
// `rm -rf internal/qasm/testdata internal/qexe/testdata`, which removes the
// whole trees — including any committed fuzz seed corpora — instead of just
// the untracked inputs `go test -fuzz` drops there. The fixed recipe uses
// `git clean` scoped to those directories, which by construction only deletes
// untracked files. This test fails if anyone reintroduces the rm form.
package quest_test

import (
	"os"
	"strings"
	"testing"
)

func TestCleanTargetPreservesTrackedTestdata(t *testing.T) {
	data, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatalf("reading Makefile: %v", err)
	}
	lines := strings.Split(string(data), "\n")
	var recipe []string
	inClean := false
	for _, line := range lines {
		if strings.HasPrefix(line, "clean:") {
			inClean = true
			continue
		}
		if inClean {
			if !strings.HasPrefix(line, "\t") {
				break
			}
			recipe = append(recipe, strings.TrimSpace(line))
		}
	}
	if len(recipe) == 0 {
		t.Fatal("Makefile has no clean target")
	}
	usesGitClean := false
	for _, cmd := range recipe {
		if strings.Contains(cmd, "rm -rf") && strings.Contains(cmd, "testdata") {
			t.Errorf("clean recipe deletes whole testdata trees (would remove tracked seeds): %q", cmd)
		}
		if strings.Contains(cmd, "git clean") && strings.Contains(cmd, "testdata") {
			usesGitClean = true
			for _, dir := range []string{"internal/qasm/testdata", "internal/qexe/testdata"} {
				if !strings.Contains(cmd, dir) {
					t.Errorf("clean recipe %q does not scope git clean to %s", cmd, dir)
				}
			}
		}
	}
	if !usesGitClean {
		t.Error("clean recipe does not use untracked-only removal (git clean) for the fuzz corpora")
	}
}
