// Package quest is the public API of this repository: a from-scratch Go
// implementation of QuEST (Quantum Error-Correction Substrate), the
// hardware-managed quantum error correction control-processor architecture
// of Tannu et al., MICRO-50 2017 ("Taming the Instruction Bandwidth of
// Quantum Computers via Hardware-Managed Error Correction").
//
// The package re-exports the stable surface of the internal packages:
//
//   - Machine construction and program execution: a cycle-level simulation
//     of the whole stack — master controller, micro-coded control engines
//     (MCEs), microcode memories, primeline execution units, and a
//     stabilizer-simulated superconducting qubit substrate with Pauli noise
//     and two-level decoding.
//   - Resource estimation: the QuRE-style analytical estimator that derives
//     code distances, physical qubit counts, T-factory provisioning and
//     instruction bandwidth for the paper's seven workloads.
//   - Experiments: one driver per figure/table of the paper's evaluation.
//
// Quickstart:
//
//	m := quest.NewMachine(quest.DefaultMachineConfig())
//	p := quest.NewProgram(2)
//	p.Prep0(0).X(0).CNOT(0, 1).MeasZ(0)
//	rep, err := m.RunProgram(p, 0)
//	// rep.Savings() is the measured baseline:QuEST bus-traffic ratio.
package quest

import (
	"quest/internal/compiler"
	"quest/internal/core"
	"quest/internal/microcode"
	"quest/internal/noise"
	"quest/internal/surface"
	"quest/internal/workload"
)

// Machine is the end-to-end cycle-level QuEST machine.
type Machine = core.Machine

// MachineConfig sizes a machine.
type MachineConfig = core.MachineConfig

// RunReport summarizes a program execution under the three bus-accounting
// models (baseline, QuEST, QuEST+cache).
type RunReport = core.RunReport

// Program is a logical (fault-tolerant) circuit.
type Program = compiler.Program

// Layout places logical qubits as surface-code patches on an MCE tile.
type Layout = compiler.Layout

// NoiseModel holds per-location Pauli fault probabilities.
type NoiseModel = noise.Model

// Schedule describes a syndrome-generation design (Steane, Shor, SC-17,
// SC-13).
type Schedule = surface.Schedule

// Design selects a microcode memory organization.
type Design = microcode.Design

// Estimator derives resources and bandwidth for workloads (the QuRE
// substitute).
type Estimator = workload.Estimator

// Estimate is a full per-workload resource derivation.
type Estimate = workload.Estimate

// Profile is a workload's logical-level footprint.
type Profile = workload.Profile

// Microcode memory organizations (Figures 10 and 11).
const (
	DesignRAM      = microcode.DesignRAM
	DesignFIFO     = microcode.DesignFIFO
	DesignUnitCell = microcode.DesignUnitCell
)

// Syndrome schedules evaluated by the paper.
var (
	Steane = surface.Steane
	Shor   = surface.Shor
	SC17   = surface.SC17
	SC13   = surface.SC13
)

// NewMachine builds a cycle-level machine.
func NewMachine(cfg MachineConfig) *Machine { return core.NewMachine(cfg) }

// DefaultMachineConfig returns a small fully functional machine
// configuration.
func DefaultMachineConfig() MachineConfig { return core.DefaultMachineConfig() }

// NewProgram returns an empty logical program over n logical qubits.
func NewProgram(n int) *Program { return compiler.NewProgram(n) }

// NewLayout builds a tile layout of n distance-d patches.
func NewLayout(d, n int) Layout { return compiler.NewLayout(d, n) }

// UniformNoise returns a noise model with every location failing at rate p.
func UniformNoise(p float64) NoiseModel { return noise.Uniform(p) }

// NewEstimator returns an estimator at the paper's default operating point
// (Projected_D technology, Steane syndrome, physical error rate 1e-4).
func NewEstimator() *Estimator { return workload.NewEstimator() }

// Workloads returns the paper's seven-workload evaluation suite.
func Workloads() []Profile { return workload.Suite() }

// ShorProfile returns the workload profile for factoring an n-bit modulus.
func ShorProfile(bits int) Profile { return workload.ShorProfile(bits) }
