// Guard for Go-version agreement across the three places a version is named:
// go.mod (`go` minimum and `toolchain` pin), the Makefile's GO_TOOLCHAIN
// variable, and CI's test matrix. Each exists for a different consumer — the
// compiler, developer tooling, and the build matrix — and drifting apart
// means "works on CI" and "works locally" quietly test different compilers.
package quest_test

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

func readAll(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(data)
}

func firstMatch(t *testing.T, text, what, pattern string) string {
	t.Helper()
	m := regexp.MustCompile(pattern).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("%s: no match for %q", what, pattern)
	}
	return m[1]
}

// minorOf parses the minor number of a "1.NN[.P]" version string.
func minorOf(t *testing.T, v string) int {
	t.Helper()
	parts := strings.Split(v, ".")
	if len(parts) < 2 || parts[0] != "1" {
		t.Fatalf("unexpected Go version %q", v)
	}
	n := 0
	for _, c := range parts[1] {
		if c < '0' || c > '9' {
			t.Fatalf("unexpected Go version %q", v)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestToolchainVersionsAgree(t *testing.T) {
	gomod := readAll(t, "go.mod")
	makefile := readAll(t, "Makefile")
	ci := readAll(t, ".github/workflows/ci.yml")

	goMin := firstMatch(t, gomod, "go.mod go directive", `(?m)^go (\d+\.\d+)$`)
	toolchain := firstMatch(t, gomod, "go.mod toolchain directive", `(?m)^toolchain (go\d+\.\d+(?:\.\d+)?)$`)
	makeToolchain := firstMatch(t, makefile, "Makefile GO_TOOLCHAIN", `(?m)^GO_TOOLCHAIN := (\S+)$`)
	matrix := firstMatch(t, ci, "CI go matrix", `(?m)^\s*go: \[(.*)\]$`)

	if makeToolchain != toolchain {
		t.Errorf("Makefile GO_TOOLCHAIN = %s, go.mod toolchain = %s; keep them identical", makeToolchain, toolchain)
	}
	if minorOf(t, strings.TrimPrefix(toolchain, "go")) < minorOf(t, goMin) {
		t.Errorf("go.mod toolchain %s is older than the go.mod minimum (go %s); bump whichever is stale", toolchain, goMin)
	}
	// The matrix must test the module's declared minimum ("<goMin>.x") and
	// the current stable release.
	var entries []string
	for _, e := range strings.Split(matrix, ",") {
		entries = append(entries, strings.Trim(strings.TrimSpace(e), `"`))
	}
	wantMin := goMin + ".x"
	foundMin, foundStable := false, false
	for _, e := range entries {
		switch e {
		case wantMin:
			foundMin = true
		case "stable":
			foundStable = true
		}
	}
	if !foundMin {
		t.Errorf("CI matrix %v does not test go.mod's minimum %s as %q", entries, goMin, wantMin)
	}
	if !foundStable {
		t.Errorf("CI matrix %v does not test the stable release", entries)
	}
	// The matrix is only honest if each entry runs its own toolchain; the
	// toolchain directive would otherwise upgrade the minimum job in place.
	if !regexp.MustCompile(`(?m)^\s*GOTOOLCHAIN: local$`).MatchString(ci) {
		t.Error("CI test job does not set GOTOOLCHAIN: local; the go.mod toolchain directive will override the version matrix")
	}
}
