package main

import (
	"fmt"
	"io"
	"sort"

	"quest/internal/benchsuite"
)

// compare writes the case-by-case diff of cur against base to w and returns
// the number of ns/op regressions beyond maxRegress. Allocation movement
// (allocs/op, B/op) is advisory: growth prints a WARN line but never counts
// as a regression. A schema mismatch is the only error.
func compare(w io.Writer, base, cur benchsuite.Report, maxRegress float64) (int, error) {
	if base.Schema != cur.Schema {
		return 0, fmt.Errorf("schema mismatch: baseline %q vs current %q", base.Schema, cur.Schema)
	}
	baseBy := map[string]benchsuite.Result{}
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	regressions := 0
	for _, c := range cur.Results {
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Fprintf(w, "NEW      %-28s %12.0f ns/op (no baseline)\n", c.Name, c.NsPerOp)
			continue
		}
		delete(baseBy, c.Name)
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = c.NsPerOp/b.NsPerOp - 1
		}
		status := "ok"
		if ratio > maxRegress {
			status = "REGRESS"
			regressions++
		}
		fmt.Fprintf(w, "%-8s %-28s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			status, c.Name, b.NsPerOp, c.NsPerOp, 100*ratio)
		// Advisory only: surface allocation growth without failing the run.
		if c.AllocsPerOp > b.AllocsPerOp {
			fmt.Fprintf(w, "WARN     %-28s %12d -> %12d allocs/op\n", c.Name, b.AllocsPerOp, c.AllocsPerOp)
		}
		if c.BytesPerOp > b.BytesPerOp {
			fmt.Fprintf(w, "WARN     %-28s %12d -> %12d B/op\n", c.Name, b.BytesPerOp, c.BytesPerOp)
		}
	}
	gone := make([]string, 0, len(baseBy))
	for name := range baseBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "GONE     %-28s (in baseline only)\n", name)
	}
	return regressions, nil
}
