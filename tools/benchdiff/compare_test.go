package main

import (
	"bytes"
	"strings"
	"testing"

	"quest/internal/benchsuite"
)

func report(results ...benchsuite.Result) benchsuite.Report {
	return benchsuite.Report{Schema: benchsuite.Schema, Results: results}
}

func TestCompareFlatIsQuiet(t *testing.T) {
	base := report(benchsuite.Result{Name: "decode", NsPerOp: 1000, AllocsPerOp: 5, BytesPerOp: 512})
	var out bytes.Buffer
	n, err := compare(&out, base, base, 0.30)
	if err != nil || n != 0 {
		t.Fatalf("compare = (%d, %v), want (0, nil)", n, err)
	}
	if strings.Contains(out.String(), "WARN") {
		t.Errorf("flat report produced warnings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("flat report missing ok line:\n%s", out.String())
	}
}

func TestCompareWarnsOnAllocGrowth(t *testing.T) {
	base := report(benchsuite.Result{Name: "decode", NsPerOp: 1000, AllocsPerOp: 5, BytesPerOp: 512})
	cur := report(benchsuite.Result{Name: "decode", NsPerOp: 1000, AllocsPerOp: 9, BytesPerOp: 2048})
	var out bytes.Buffer
	n, err := compare(&out, base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	// Allocation growth is advisory: WARN lines for both axes, zero
	// regressions, so the exit stays green.
	if n != 0 {
		t.Errorf("alloc growth counted as %d regression(s); must never hard-fail", n)
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Errorf("missing allocs/op WARN:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "B/op") {
		t.Errorf("missing B/op WARN:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "WARN"); got != 2 {
		t.Errorf("%d WARN lines, want 2:\n%s", got, out.String())
	}
}

func TestCompareNoWarnOnAllocShrink(t *testing.T) {
	base := report(benchsuite.Result{Name: "decode", NsPerOp: 1000, AllocsPerOp: 9, BytesPerOp: 2048})
	cur := report(benchsuite.Result{Name: "decode", NsPerOp: 1000, AllocsPerOp: 5, BytesPerOp: 512})
	var out bytes.Buffer
	if _, err := compare(&out, base, cur, 0.30); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "WARN") {
		t.Errorf("allocation improvement produced warnings:\n%s", out.String())
	}
}

func TestCompareNsRegressionFails(t *testing.T) {
	base := report(
		benchsuite.Result{Name: "decode", NsPerOp: 1000},
		benchsuite.Result{Name: "machine", NsPerOp: 1000},
	)
	cur := report(
		benchsuite.Result{Name: "decode", NsPerOp: 1400},  // +40% > 30% gate
		benchsuite.Result{Name: "machine", NsPerOp: 1200}, // +20% ok
	)
	var out bytes.Buffer
	n, err := compare(&out, base, cur, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("regressions = %d, want 1", n)
	}
	if !strings.Contains(out.String(), "REGRESS") {
		t.Errorf("missing REGRESS line:\n%s", out.String())
	}
}

func TestCompareNewAndGoneNeverFail(t *testing.T) {
	base := report(benchsuite.Result{Name: "retired", NsPerOp: 1000, AllocsPerOp: 50})
	cur := report(benchsuite.Result{Name: "fresh", NsPerOp: 9999, AllocsPerOp: 99})
	var out bytes.Buffer
	n, err := compare(&out, base, cur, 0.30)
	if err != nil || n != 0 {
		t.Fatalf("compare = (%d, %v), want (0, nil)", n, err)
	}
	if !strings.Contains(out.String(), "NEW") || !strings.Contains(out.String(), "GONE") {
		t.Errorf("missing NEW/GONE lines:\n%s", out.String())
	}
	if strings.Contains(out.String(), "WARN") {
		t.Errorf("unmatched cases produced alloc warnings:\n%s", out.String())
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := report()
	cur := report()
	cur.Schema = "quest-bench/0"
	if _, err := compare(&bytes.Buffer{}, base, cur, 0.30); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
