// Command benchdiff compares two benchsuite JSON reports (see
// internal/benchsuite) and fails when a benchmark regressed beyond the
// allowed ratio. CI runs it with the committed baseline (BENCH_PR4.json)
// against a fresh report from `questbench -bench-json`, turning decoder and
// machine-loop slowdowns into failing checks.
//
// Usage:
//
//	benchdiff [-max-regress 0.30] baseline.json current.json
//
// A case is a regression when current ns/op exceeds baseline ns/op by more
// than -max-regress (0.30 = +30%). Cases present in only one report are
// listed but never fail the run, so adding or retiring benchmarks does not
// require touching the baseline in the same commit. Reports with different
// schema identifiers refuse to compare.
//
// Allocation movement (B/op, allocs/op) is compared as well but only warns:
// allocation counts are exact, so any growth is reported, yet a memory shift
// alone never fails the run — latency is the gate, allocations are the hint
// that explains it.
package main

import (
	"flag"
	"fmt"
	"os"

	"quest/internal/benchsuite"
)

var maxRegress = flag.Float64("max-regress", 0.30,
	"fail when ns/op grows by more than this fraction over baseline")

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress 0.30] baseline.json current.json")
		os.Exit(2)
	}
	base := readReport(flag.Arg(0))
	cur := readReport(flag.Arg(1))
	regressions, err := compare(os.Stdout, base, cur, *maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d case(s) regressed beyond +%.0f%%\n",
			regressions, 100**maxRegress)
		os.Exit(1)
	}
}

func readReport(path string) benchsuite.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	r, err := benchsuite.ReadReport(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}
