// Command benchdiff compares two benchsuite JSON reports (see
// internal/benchsuite) and fails when a benchmark regressed beyond the
// allowed ratio. CI runs it with the committed baseline (BENCH_PR2.json)
// against a fresh report from `questbench -bench-json`, turning decoder and
// machine-loop slowdowns into failing checks.
//
// Usage:
//
//	benchdiff [-max-regress 0.30] baseline.json current.json
//
// A case is a regression when current ns/op exceeds baseline ns/op by more
// than -max-regress (0.30 = +30%). Cases present in only one report are
// listed but never fail the run, so adding or retiring benchmarks does not
// require touching the baseline in the same commit. Reports with different
// schema identifiers refuse to compare.
//
// Allocation movement (B/op, allocs/op) is compared as well but only warns:
// allocation counts are exact, so any growth is reported, yet a memory shift
// alone never fails the run — latency is the gate, allocations are the hint
// that explains it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"quest/internal/benchsuite"
)

var maxRegress = flag.Float64("max-regress", 0.30,
	"fail when ns/op grows by more than this fraction over baseline")

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress 0.30] baseline.json current.json")
		os.Exit(2)
	}
	base := readReport(flag.Arg(0))
	cur := readReport(flag.Arg(1))
	if base.Schema != cur.Schema {
		fmt.Fprintf(os.Stderr, "benchdiff: schema mismatch: baseline %q vs current %q\n",
			base.Schema, cur.Schema)
		os.Exit(2)
	}

	baseBy := map[string]benchsuite.Result{}
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	regressions := 0
	for _, c := range cur.Results {
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Printf("NEW      %-28s %12.0f ns/op (no baseline)\n", c.Name, c.NsPerOp)
			continue
		}
		delete(baseBy, c.Name)
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = c.NsPerOp/b.NsPerOp - 1
		}
		status := "ok"
		if ratio > *maxRegress {
			status = "REGRESS"
			regressions++
		}
		fmt.Printf("%-8s %-28s %12.0f -> %12.0f ns/op  (%+.1f%%)\n",
			status, c.Name, b.NsPerOp, c.NsPerOp, 100*ratio)
		// Advisory only: surface allocation growth without failing the run.
		if c.AllocsPerOp > b.AllocsPerOp {
			fmt.Printf("WARN     %-28s %12d -> %12d allocs/op\n", c.Name, b.AllocsPerOp, c.AllocsPerOp)
		}
		if c.BytesPerOp > b.BytesPerOp {
			fmt.Printf("WARN     %-28s %12d -> %12d B/op\n", c.Name, b.BytesPerOp, c.BytesPerOp)
		}
	}
	gone := make([]string, 0, len(baseBy))
	for name := range baseBy {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Printf("GONE     %-28s (in baseline only)\n", name)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d case(s) regressed beyond +%.0f%%\n",
			regressions, 100**maxRegress)
		os.Exit(1)
	}
}

func readReport(path string) benchsuite.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	r, err := benchsuite.ReadReport(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}
