// Command benchdiff compares two benchsuite JSON reports (see
// internal/benchsuite) and fails when a benchmark regressed beyond the
// allowed ratio. CI runs it with the committed baseline (BENCH_PR6.json)
// against a fresh report from `questbench -bench-json`, turning decoder and
// machine-loop slowdowns into failing checks.
//
// Usage:
//
//	benchdiff [-max-regress 0.30] baseline.json current.json
//
// A case is a regression when current ns/op exceeds baseline ns/op by more
// than -max-regress (0.30 = +30%). Cases present in only one report are
// listed but never fail the run, so adding or retiring benchmarks does not
// require touching the baseline in the same commit. Reports with different
// schema identifiers refuse to compare.
//
// Allocation movement (B/op, allocs/op) is compared as well but only warns:
// allocation counts are exact, so any growth is reported, yet a memory shift
// alone never fails the run — latency is the gate, allocations are the hint
// that explains it.
//
// Exit codes follow the tools/internal/cli contract: 0 clean, 1 regressions,
// 2 usage or unreadable/unparseable input.
package main

import (
	"flag"
	"io"

	"quest/internal/benchsuite"
	"quest/tools/internal/cli"
)

func command() *cli.Command {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	maxRegress := fs.Float64("max-regress", 0.30,
		"fail when ns/op grows by more than this fraction over baseline")
	return &cli.Command{
		Name:  "benchdiff",
		Usage: "[-max-regress 0.30] baseline.json current.json",
		NArgs: 2,
		Flags: fs,
		Run: func(args []string, stdout io.Writer) error {
			base, err := readReport(args[0])
			if err != nil {
				return err
			}
			cur, err := readReport(args[1])
			if err != nil {
				return err
			}
			regressions, err := compare(stdout, base, cur, *maxRegress)
			if err != nil {
				return cli.Usagef("%v", err)
			}
			if regressions > 0 {
				return cli.Failf("%d case(s) regressed beyond +%.0f%%", regressions, 100**maxRegress)
			}
			return nil
		},
	}
}

func readReport(path string) (benchsuite.Report, error) {
	data, err := cli.ReadFile(path)
	if err != nil {
		return benchsuite.Report{}, err
	}
	r, err := benchsuite.ReadReport(data)
	if err != nil {
		return benchsuite.Report{}, cli.Usagef("parsing %s: %v", path, err)
	}
	return r, nil
}

func main() {
	command().Main()
}
