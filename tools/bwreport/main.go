// Command bwreport validates and compares quest-bw/1 instruction-bandwidth
// profiles: point it at one or many artifacts written by `questbench -bw` /
// `questsim -bw` and it renders a per-run comparison table — windows, total
// traffic, peak and sustained window bytes, p50/p99, burstiness, and the
// cache-replay savings — keyed by the run's microcode design when the
// header carries one. This is the paper's evaluation question in one table:
// how much instruction bandwidth does each µcode memory organization
// (ram, fifo, unitcell) actually demand, and how bursty is it?
//
// Usage:
//
//	bwreport [-check] file [file ...]
//
// -check validates instead of rendering: each file must be a well-formed
// quest-bw/1 profile (schema, single leading header, contiguous windows,
// per-window bus sums matching totals, a summary that recomputes exactly
// from the windows). CI's bw-smoke job gates on it.
//
// Exit codes follow the tools/internal/cli contract: 0 clean, 1 findings
// (invalid profile), 2 usage or unreadable input. Rows sort by design then
// experiment then source, so any argument order renders identical bytes.
package main

import (
	"flag"
	"fmt"
	"io"
	"sort"

	"quest/internal/bwprofile"
	"quest/tools/internal/cli"
)

func command() *cli.Command {
	fs := flag.NewFlagSet("bwreport", flag.ContinueOnError)
	check := fs.Bool("check", false, "validate the profiles instead of rendering the comparison table")
	return &cli.Command{
		Name:  "bwreport",
		Usage: "[-check] file [file ...]",
		NArgs: -1,
		Flags: fs,
		Run: func(args []string, stdout io.Writer) error {
			if len(args) == 0 {
				return cli.Usagef("no profile files given (write one with questbench/questsim -bw)")
			}
			runs := make([]run, 0, len(args))
			for _, src := range args {
				data, err := cli.ReadFile(src)
				if err != nil {
					return err
				}
				rep, err := bwprofile.Validate(data)
				if err != nil {
					return cli.Failf("%s: %v", src, err)
				}
				runs = append(runs, run{src: src, report: rep})
			}
			if *check {
				for _, r := range sorted(runs) {
					fmt.Fprintf(stdout, "bwreport: %s OK — experiment %q%s, %d window(s) of %d cycle(s)\n",
						r.src, r.report.Experiment, designLabel(r.report), r.report.Summary.Windows, r.report.Summary.WindowCycles)
				}
				return nil
			}
			render(stdout, sorted(runs))
			return nil
		},
	}
}

// run is one validated profile.
type run struct {
	src    string
	report bwprofile.ValidateReport
}

// sorted orders runs by design, then experiment, then source, so the table
// is independent of argument order.
func sorted(runs []run) []run {
	out := append([]run(nil), runs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].report, out[j].report
		if a.Design != b.Design {
			return a.Design < b.Design
		}
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		return out[i].src < out[j].src
	})
	return out
}

// designLabel renders a report's design key for check lines ("" when the
// header config carries none).
func designLabel(r bwprofile.ValidateReport) string {
	if r.Design == "" {
		return ""
	}
	return fmt.Sprintf(" (design %s)", r.Design)
}

// label picks the row key: the microcode design when the run recorded one,
// the experiment name otherwise.
func label(r run) string {
	if r.report.Design != "" {
		return r.report.Design
	}
	return r.report.Experiment
}

// render writes the comparison table plus the per-run cache-replay savings.
func render(w io.Writer, runs []run) {
	fmt.Fprintf(w, "bwreport: %d profile(s)\n", len(runs))
	fmt.Fprintf(w, "%-10s %-20s %8s %10s %10s %11s %9s %9s %6s\n",
		"design", "source", "windows", "total B", "peak B", "sustained", "p50 B", "p99 B", "burst")
	for _, r := range runs {
		s := r.report.Summary
		fmt.Fprintf(w, "%-10s %-20s %8d %10d %10d %11.1f %9d %9d %6.2f\n",
			label(r), r.src, s.Windows, s.TotalBytes, s.PeakBytes, s.SustainedBytes,
			s.P50Bytes, s.P99Bytes, s.Burstiness)
	}
	for _, r := range runs {
		replay, ok := r.report.Summary.Classes[bwprofile.ClassReplay.String()]
		if !ok || replay.Instrs == 0 {
			continue
		}
		// Replayed µops enter the pipeline from the tile-local cache without
		// crossing the global bus; each would have cost an instruction's
		// bus bytes if dispatched — the paper's bandwidth-taming effect.
		fmt.Fprintf(w, "%s: cache replayed %d µop(s) without bus traffic (%d B dispatched on the bus)\n",
			label(r), replay.Instrs, r.report.Summary.TotalBytes)
	}
}

func main() {
	command().Main()
}
