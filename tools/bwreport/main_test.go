package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quest/internal/bwprofile"
)

// writeProfile fabricates one valid quest-bw/1 artifact and returns its path.
func writeProfile(t *testing.T, dir, name, experiment, design string, peak uint64) string {
	t.Helper()
	r := bwprofile.New(4)
	r.Observe(0, bwprofile.BusLogical, bwprofile.ClassPrep, 1, 2)
	r.Observe(5, bwprofile.BusLogical, bwprofile.ClassClifford, peak/2, peak)
	r.Observe(6, bwprofile.BusReplay, bwprofile.ClassReplay, 7, 0)
	var buf bytes.Buffer
	config := map[string]string{}
	if design != "" {
		config["design"] = design
	}
	if err := r.WriteJSONL(&buf, experiment, config); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBwreportExitCodeContract extends the tools/internal/cli exit-code
// contract to this binary: 0 clean, 1 findings (invalid profile), 2
// unusable input (missing file, no arguments, unknown flag).
func TestBwreportExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	good := writeProfile(t, dir, "good", "questsim", "ram", 40)
	corrupt := filepath.Join(dir, "corrupt.jsonl")
	if err := os.WriteFile(corrupt, []byte(`{"record":"header","schema":"quest-other/9"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"valid profile", []string{good}, 0},
		{"valid with -check", []string{"-check", good}, 0},
		{"invalid schema", []string{corrupt}, 1},
		{"missing file", []string{filepath.Join(dir, "absent.jsonl")}, 2},
		{"no arguments", nil, 2},
		{"unknown flag", []string{"-nope", good}, 2},
	} {
		var out, errw bytes.Buffer
		if got := command().Execute(tc.args, &out, &errw); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, got, tc.want, errw.String())
		}
	}
}

func TestBwreportComparisonTable(t *testing.T) {
	dir := t.TempDir()
	ram := writeProfile(t, dir, "ram", "questsim", "ram", 40)
	fifo := writeProfile(t, dir, "fifo", "questsim", "fifo", 20)
	unit := writeProfile(t, dir, "unitcell", "questsim", "unitcell", 10)

	var out, errw bytes.Buffer
	if code := command().Execute([]string{unit, ram, fifo}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	got := out.String()
	// Rows key on design and sort by it regardless of argument order.
	f, r, u := strings.Index(got, "fifo"), strings.Index(got, "ram"), strings.Index(got, "unitcell")
	if f < 0 || r < 0 || u < 0 || !(f < r && r < u) {
		t.Errorf("rows not sorted by design (fifo@%d ram@%d unitcell@%d):\n%s", f, r, u, got)
	}
	if !strings.Contains(got, "burst") {
		t.Errorf("missing burstiness column:\n%s", got)
	}
	if !strings.Contains(got, "cache replayed 7") {
		t.Errorf("missing replay savings line:\n%s", got)
	}

	// Argument order must not change the table bytes.
	var out2 bytes.Buffer
	if code := command().Execute([]string{ram, fifo, unit}, &out2, &errw); code != 0 {
		t.Fatalf("reordered run: exit %d", code)
	}
	if out2.String() != got {
		t.Error("table bytes depend on argument order")
	}
}

func TestBwreportCheckNamesDesign(t *testing.T) {
	dir := t.TempDir()
	ram := writeProfile(t, dir, "ram", "questsim", "ram", 40)
	plain := writeProfile(t, dir, "plain", "questbench", "", 8)
	var out, errw bytes.Buffer
	if code := command().Execute([]string{"-check", ram, plain}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "design ram") {
		t.Errorf("check line missing design:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `experiment "questbench"`) {
		t.Errorf("check line missing experiment:\n%s", out.String())
	}
}
