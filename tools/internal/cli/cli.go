// Package cli is the shared skeleton of the repository's checker commands
// (tools/benchdiff, tools/ledgercheck, tools/tracecheck, tools/questvet):
// flag parsing, positional-argument validation, and a uniform exit-code
// contract that CI and the Makefile smoke targets rely on:
//
//	0 — the check ran and found nothing wrong
//	1 — the check ran and found findings (validation failure, regression,
//	    lint diagnostics)
//	2 — the command could not run the check at all (bad usage, unreadable
//	    input, malformed flags)
//
// Commands return errors built with Failf (exit 1) or Usagef (exit 2) from
// their Run function; any other error is treated as a finding (exit 1).
// Execute never calls os.Exit, so tests pin the exit codes in-process;
// Main is the thin os.Exit wrapper for the real binaries.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// Exit codes of the checker-command contract.
const (
	ExitOK       = 0
	ExitFindings = 1
	ExitUsage    = 2
)

// Command describes one checker binary.
type Command struct {
	// Name is the command name used in usage and error prefixes.
	Name string
	// Usage is the one-line usage after the name, e.g. "[-min-cells N] run.ledger".
	Usage string
	// NArgs is the exact number of positional arguments required; -1
	// accepts any number.
	NArgs int
	// Flags holds the command's flag definitions. Optional; created empty
	// when nil.
	Flags *flag.FlagSet
	// Run performs the check. args are the positional arguments; progress
	// and results go to stdout. Return nil for success, Failf(...) for
	// findings, Usagef(...) for usage errors.
	Run func(args []string, stdout io.Writer) error
}

// exitError carries an exit code with a message.
type exitError struct {
	code int
	msg  string
}

func (e *exitError) Error() string { return e.msg }

// Failf builds a findings error: the check ran and found problems (exit 1).
func Failf(format string, args ...any) error {
	return &exitError{code: ExitFindings, msg: fmt.Sprintf(format, args...)}
}

// Usagef builds a usage/input error: the check could not run (exit 2).
func Usagef(format string, args ...any) error {
	return &exitError{code: ExitUsage, msg: fmt.Sprintf(format, args...)}
}

// ReadFile reads path, mapping failure to a usage-class error (exit 2):
// an unreadable input means the check never ran.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Usagef("%v", err)
	}
	return data, nil
}

// Execute parses argv, validates arity, runs the command, and returns the
// exit code, writing diagnostics to stderr. It never calls os.Exit.
func (c *Command) Execute(argv []string, stdout, stderr io.Writer) int {
	fs := c.Flags
	if fs == nil {
		fs = flag.NewFlagSet(c.Name, flag.ContinueOnError)
	}
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s %s\n", c.Name, c.Usage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return ExitUsage
	}
	if c.NArgs >= 0 && fs.NArg() != c.NArgs {
		fs.Usage()
		return ExitUsage
	}
	if err := c.Run(fs.Args(), stdout); err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", c.Name, err)
		var ee *exitError
		if errors.As(err, &ee) {
			return ee.code
		}
		return ExitFindings
	}
	return ExitOK
}

// Main runs the command against the real process environment and exits
// with its code.
func (c *Command) Main() {
	os.Exit(c.Execute(os.Args[1:], os.Stdout, os.Stderr))
}
