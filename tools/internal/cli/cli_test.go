package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"
	"testing"
)

func cmd(run func(args []string, stdout io.Writer) error) *Command {
	return &Command{Name: "x", Usage: "[-n N] arg", NArgs: 1, Run: run}
}

// TestExitCodeContract pins the 0/1/2 contract CI and the Makefile smoke
// targets rely on: 0 clean, 1 findings, 2 the check could not run.
func TestExitCodeContract(t *testing.T) {
	ok := func(args []string, stdout io.Writer) error { return nil }
	finding := func(args []string, stdout io.Writer) error { return Failf("regression in %s", args[0]) }
	usage := func(args []string, stdout io.Writer) error { return Usagef("cannot read %s", args[0]) }
	plain := func(args []string, stdout io.Writer) error { return errors.New("unclassified failure") }

	cases := []struct {
		name string
		c    *Command
		argv []string
		want int
	}{
		{"clean run", cmd(ok), []string{"in.json"}, ExitOK},
		{"findings", cmd(finding), []string{"in.json"}, ExitFindings},
		{"usage error from run", cmd(usage), []string{"in.json"}, ExitUsage},
		{"plain error counts as finding", cmd(plain), []string{"in.json"}, ExitFindings},
		{"missing positional arg", cmd(ok), nil, ExitUsage},
		{"excess positional args", cmd(ok), []string{"a", "b"}, ExitUsage},
		{"unknown flag", cmd(ok), []string{"-nope", "in.json"}, ExitUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			if got := tc.c.Execute(tc.argv, &out, &errw); got != tc.want {
				t.Errorf("Execute(%q) = %d, want %d (stderr: %s)", tc.argv, got, tc.want, errw.String())
			}
		})
	}
}

// TestReadFileUnreadableIsUsageClass pins that an unreadable input exits 2,
// not 1: the check never ran, so it must not masquerade as a finding.
func TestReadFileUnreadableIsUsageClass(t *testing.T) {
	c := cmd(func(args []string, stdout io.Writer) error {
		_, err := ReadFile(args[0])
		return err
	})
	var out, errw strings.Builder
	if got := c.Execute([]string{"testdata/definitely-missing.json"}, &out, &errw); got != ExitUsage {
		t.Fatalf("unreadable input exited %d, want %d", got, ExitUsage)
	}
}

// TestVariadicArity pins that NArgs < 0 accepts any argument count.
func TestVariadicArity(t *testing.T) {
	c := &Command{Name: "x", Usage: "[arg ...]", NArgs: -1,
		Run: func(args []string, stdout io.Writer) error {
			fmt.Fprintf(stdout, "%d args\n", len(args))
			return nil
		}}
	for _, argv := range [][]string{nil, {"a"}, {"a", "b", "c"}} {
		var out, errw strings.Builder
		if got := c.Execute(argv, &out, &errw); got != ExitOK {
			t.Errorf("Execute(%q) = %d, want 0", argv, got)
		}
	}
}

// TestFlagsReachRun pins that flag values parsed by Execute are visible to
// the Run closure — the pattern every checker main uses.
func TestFlagsReachRun(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	n := fs.Int("n", 1, "")
	c := &Command{Name: "x", Usage: "[-n N] arg", NArgs: 1, Flags: fs,
		Run: func(args []string, stdout io.Writer) error {
			if *n != 7 {
				return Failf("n = %d, want 7", *n)
			}
			return nil
		}}
	var out, errw strings.Builder
	if got := c.Execute([]string{"-n", "7", "in"}, &out, &errw); got != ExitOK {
		t.Fatalf("flag did not reach Run (exit %d, stderr %s)", got, errw.String())
	}
}
