// Command ledgercheck validates an experiment ledger (JSONL) as emitted by
// the -ledger flag of questbench/questsim: a single schema-versioned header
// first, every subsequent line a trial or cell record, seeds parseable,
// per-cell counts self-consistent, and every sampled trial matched by a cell
// summary. CI's ledger-smoke step runs it over a freshly generated ledger so
// a schema regression fails the build instead of silently producing files
// nothing can replay.
//
// Usage:
//
//	ledgercheck [-min-cells N] [-min-trials N] run.ledger
//
// Exit codes follow the tools/internal/cli contract: 0 valid, 1 validation
// findings, 2 usage or unreadable input.
package main

import (
	"flag"
	"fmt"
	"io"

	"quest/internal/ledger"
	"quest/tools/internal/cli"
)

func command() *cli.Command {
	fs := flag.NewFlagSet("ledgercheck", flag.ContinueOnError)
	minCells := fs.Int("min-cells", 1, "fail unless the ledger carries at least this many cell summaries")
	minTrials := fs.Int("min-trials", 0, "fail unless the ledger carries at least this many trial records")
	return &cli.Command{
		Name:  "ledgercheck",
		Usage: "[-min-cells N] [-min-trials N] run.ledger",
		NArgs: 1,
		Flags: fs,
		Run: func(args []string, stdout io.Writer) error {
			path := args[0]
			data, err := cli.ReadFile(path)
			if err != nil {
				return err
			}
			rep, err := ledger.Validate(data)
			if err != nil {
				return cli.Failf("%s: %v", path, err)
			}
			if rep.Cells < *minCells {
				return cli.Failf("%s: %d cell(s), want >= %d", path, rep.Cells, *minCells)
			}
			if rep.Trials < *minTrials {
				return cli.Failf("%s: %d trial record(s), want >= %d", path, rep.Trials, *minTrials)
			}
			fmt.Fprintf(stdout, "ledgercheck: %s OK — experiment %q, %d cell(s), %d trial record(s), %d stopped early\n",
				path, rep.Experiment, rep.Cells, rep.Trials, rep.StoppedEarly)
			return nil
		},
	}
}

func main() {
	command().Main()
}
