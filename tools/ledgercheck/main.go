// Command ledgercheck validates an experiment ledger (JSONL) as emitted by
// the -ledger flag of questbench/questsim: a single schema-versioned header
// first, every subsequent line a trial or cell record, seeds parseable,
// per-cell counts self-consistent, and every sampled trial matched by a cell
// summary. CI's ledger-smoke step runs it over a freshly generated ledger so
// a schema regression fails the build instead of silently producing files
// nothing can replay.
//
// Usage:
//
//	ledgercheck [-min-cells N] [-min-trials N] run.ledger
package main

import (
	"flag"
	"fmt"
	"os"

	"quest/internal/ledger"
)

func main() {
	minCells := flag.Int("min-cells", 1, "fail unless the ledger carries at least this many cell summaries")
	minTrials := flag.Int("min-trials", 0, "fail unless the ledger carries at least this many trial records")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ledgercheck [-min-cells N] [-min-trials N] run.ledger")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ledgercheck:", err)
		os.Exit(1)
	}
	rep, err := ledger.Validate(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ledgercheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	if rep.Cells < *minCells {
		fmt.Fprintf(os.Stderr, "ledgercheck: %s: %d cell(s), want >= %d\n", path, rep.Cells, *minCells)
		os.Exit(1)
	}
	if rep.Trials < *minTrials {
		fmt.Fprintf(os.Stderr, "ledgercheck: %s: %d trial record(s), want >= %d\n", path, rep.Trials, *minTrials)
		os.Exit(1)
	}
	fmt.Printf("ledgercheck: %s OK — experiment %q, %d cell(s), %d trial record(s), %d stopped early\n",
		path, rep.Experiment, rep.Cells, rep.Trials, rep.StoppedEarly)
}
