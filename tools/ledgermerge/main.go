// Command ledgermerge recombines the N ledgers written by a sharded sweep
// (questbench -shard i/N, one ledger per process) into the exact bytes the
// single-process run would have written: shard provenance is stripped from
// the reconciled header and every cell block is spliced back into global
// sweep order (cell k came from shard k mod N). CI's shard-smoke job cmp(1)s
// the result against a real 1-process run, so "merge is byte-identical" is a
// build invariant, not a comment.
//
// Usage:
//
//	ledgermerge [-o FILE] shard0.ledger shard1.ledger [shard2.ledger ...]
//
// The merged ledger goes to -o ('-' = stdout, the default; the summary line
// then moves to stderr so the bytes stay clean). A single unsharded input
// passes through unchanged, making the tool safe to script over any run.
//
// Exit codes follow the tools/internal/cli contract: 0 merged and valid, 1
// findings (incomplete or overlapping shard set, disagreeing headers, cell
// counts inconsistent with round-robin assignment), 2 usage or input that
// could not be read or parsed at all (missing file, corrupt JSON).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"quest/internal/ledger"
	"quest/tools/internal/cli"
)

func command() *cli.Command {
	fs := flag.NewFlagSet("ledgermerge", flag.ContinueOnError)
	out := fs.String("o", "-", "write the merged ledger to this file ('-' = stdout)")
	return &cli.Command{
		Name:  "ledgermerge",
		Usage: "[-o FILE] shard0.ledger [shard1.ledger ...]",
		NArgs: -1,
		Flags: fs,
		Run: func(args []string, stdout io.Writer) error {
			if len(args) == 0 {
				return cli.Usagef("no shard ledgers given")
			}
			shards := make([]*ledger.ShardLedger, 0, len(args))
			for _, path := range args {
				data, err := cli.ReadFile(path)
				if err != nil {
					return err
				}
				sh, err := ledger.ParseShard(data)
				if err != nil {
					if errors.Is(err, ledger.ErrCorrupt) {
						// Unparseable bytes mean the merge never ran.
						return cli.Usagef("%s: %v", path, err)
					}
					return cli.Failf("%s: %v", path, err)
				}
				shards = append(shards, sh)
			}
			merged, err := ledger.Merge(shards)
			if err != nil {
				return cli.Failf("%v", err)
			}
			// The merged bytes must themselves be a valid ledger — a merge
			// that assembles an invalid file is a finding in its own right.
			rep, err := ledger.Validate(merged)
			if err != nil {
				return cli.Failf("merged ledger fails validation: %v", err)
			}
			summary := stdout
			if *out == "-" {
				if _, err := stdout.Write(merged); err != nil {
					return cli.Failf("write merged ledger: %v", err)
				}
				summary = os.Stderr
			} else {
				if err := os.WriteFile(*out, merged, 0o644); err != nil {
					return cli.Failf("write merged ledger: %v", err)
				}
			}
			fmt.Fprintf(summary, "ledgermerge: %d shard(s) -> %s OK — experiment %q, %d cell(s), %d trial record(s)\n",
				len(args), *out, rep.Experiment, rep.Cells, rep.Trials)
			return nil
		},
	}
}

func main() {
	command().Main()
}
