package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quest/internal/ledger"
)

// writeShard fabricates one shard ledger file owning the cells k ≡ index
// (mod count) of a cells-cell sweep and returns its path.
func writeShard(t *testing.T, dir string, index, count, cells int) string {
	t.Helper()
	var buf bytes.Buffer
	info := ledger.ShardInfo{Index: index, Count: count}
	w, err := ledger.NewShardWriter(&buf, "merge-cli-test", map[string]string{"suite": "ledgermerge"}, 1, info)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < cells; k++ {
		if count >= 2 && k%count != index {
			continue
		}
		name := fmt.Sprintf("cell-%d", k)
		for i := 0; i < 2; i++ {
			if err := w.WriteTrial(ledger.Trial{
				Cell: name, Trial: i, Seed: ledger.SeedString(uint64(k*100 + i)), Fail: i == 0,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WriteCell(ledger.Cell{
			Cell: name, Seed: ledger.SeedString(uint64(k)), Budget: 2, Trials: 2,
			Failures: 1, Rate: 0.5, WilsonLo: 0, WilsonHi: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("ledger-shard-%d-of-%d.jsonl", index, count))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLedgermergeExitCodeContract extends the tools/internal/cli exit-code
// contract to this binary: 0 merged, 1 semantic findings (overlapping or
// incomplete shard sets), 2 unusable input (missing file, corrupt JSON, no
// arguments).
func TestLedgermergeExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	s0 := writeShard(t, dir, 0, 2, 3)
	s1 := writeShard(t, dir, 1, 2, 3)
	corrupt := filepath.Join(dir, "corrupt.jsonl")
	data, err := os.ReadFile(s0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corrupt, append(data, []byte("{torn")...), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"clean merge", []string{"-o", filepath.Join(dir, "merged.jsonl"), s0, s1}, 0},
		{"single unsharded passthrough", []string{"-o", filepath.Join(dir, "single.jsonl"), writeShard(t, dir, 0, 1, 2)}, 0},
		{"overlapping shards", []string{"-o", filepath.Join(dir, "dup.jsonl"), s0, s0}, 1},
		{"incomplete shard set", []string{"-o", filepath.Join(dir, "half.jsonl"), s0}, 1},
		{"corrupt shard", []string{"-o", filepath.Join(dir, "bad.jsonl"), corrupt, s1}, 2},
		{"missing file", []string{filepath.Join(dir, "nope.jsonl")}, 2},
		{"no arguments", nil, 2},
		{"unknown flag", []string{"-nope", s0}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			if got := command().Execute(tc.argv, &out, &errw); got != tc.want {
				t.Errorf("exit %d, want %d (stderr: %s)", got, tc.want, errw.String())
			}
		})
	}
}

// TestLedgermergeReconstructsSingleProcessBytes pins the tool end to end:
// the -o file equals the ledger the unsharded run writes, and stdout mode
// emits the same bytes.
func TestLedgermergeReconstructsSingleProcessBytes(t *testing.T) {
	dir := t.TempDir()
	fullPath := writeShard(t, dir, 0, 1, 5)
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	s0 := writeShard(t, dir, 0, 2, 5)
	s1 := writeShard(t, dir, 1, 2, 5)

	out := filepath.Join(dir, "merged.jsonl")
	var stdout, stderr strings.Builder
	if got := command().Execute([]string{"-o", out, s0, s1}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d (stderr: %s)", got, stderr.String())
	}
	merged, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, full) {
		t.Errorf("merged file differs from the single-process ledger")
	}
	if !strings.Contains(stdout.String(), "5 cell(s)") {
		t.Errorf("summary %q does not report 5 cells", stdout.String())
	}

	var viaStdout, stderr2 strings.Builder
	if got := command().Execute([]string{s0, s1}, &viaStdout, &stderr2); got != 0 {
		t.Fatalf("stdout mode: exit %d (stderr: %s)", got, stderr2.String())
	}
	if viaStdout.String() != string(full) {
		t.Errorf("stdout-mode bytes differ from the single-process ledger")
	}
}
