// Command questtop is the fleet monitor for live quest-events/1 telemetry
// streams: point it at one or many shard event streams — JSONL files written
// by `questbench -events` / `questsim -events`, or `http://host/events` SSE
// URLs served by a running process under -pprof — and it renders the sharded
// sweep as one run: per-shard and total trial rates, the slowest unfinished
// cell, the CI-width frontier (the interval furthest from converging), and
// the fleet ETA.
//
// Usage:
//
//	questtop [-check] [-for DURATION] stream [stream ...]
//
// A stream is a file path or an http(s) URL. URLs are tailed as SSE for at
// most -for (default 2s) before rendering; files are read once, so rerun (or
// `watch questtop ...`) to refresh.
//
// -check validates instead of rendering: each stream must be a well-formed
// quest-events/1 stream (schema, single leading header, increasing seq,
// monotone timestamps, sorted self-consistent cells) and the set must be a
// coherent fleet (one experiment, one shard count, distinct shard indices).
// File streams must be gap-free from seq 1; URL streams are validated as
// mid-run tails (a late SSE subscriber starts at the current seq, and a
// slow one may drop frames). CI's events-smoke job gates on it.
//
// Exit codes follow the tools/internal/cli contract: 0 clean, 1 findings
// (invalid stream, incoherent fleet), 2 usage or unreadable input. The
// aggregate view is deterministic in the shard arrival order: rows sort by
// shard identity, not argument position, so any ordering of the same
// streams renders identical totals.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"quest/internal/bandwidth"
	"quest/internal/events"
	"quest/tools/internal/cli"
)

func command() *cli.Command {
	fs := flag.NewFlagSet("questtop", flag.ContinueOnError)
	check := fs.Bool("check", false, "validate the streams and fleet coherence instead of rendering")
	tail := fs.Duration("for", 2*time.Second, "how long to tail each SSE URL before rendering")
	return &cli.Command{
		Name:  "questtop",
		Usage: "[-check] [-for DURATION] stream [stream ...]",
		NArgs: -1,
		Flags: fs,
		Run: func(args []string, stdout io.Writer) error {
			if len(args) == 0 {
				return cli.Usagef("no event streams given (files or http://host/events URLs)")
			}
			shards := make([]shardStream, 0, len(args))
			for _, src := range args {
				data, live, err := readStream(src, *tail)
				if err != nil {
					return err
				}
				st, err := events.ParseStream(data)
				if err != nil {
					return cli.Failf("%s: %v", src, err)
				}
				validate := events.Validate
				if live {
					validate = events.ValidateTail
				}
				rep, err := validate(data)
				if err != nil {
					return cli.Failf("%s: %v", src, err)
				}
				shards = append(shards, shardStream{src: src, stream: st, report: rep})
			}
			if err := checkFleet(shards); err != nil {
				return err
			}
			if *check {
				for _, s := range sorted(shards) {
					fmt.Fprintf(stdout, "questtop: %s OK — experiment %q, %s, %d snapshot(s), %d cell(s) (%d done)\n",
						s.src, s.report.Experiment, shardLabel(s.report), s.report.Snapshots, s.report.Cells, s.report.DoneCells)
				}
				return nil
			}
			render(stdout, sorted(shards))
			return nil
		},
	}
}

// shardStream is one parsed input stream with its validation report.
type shardStream struct {
	src    string
	stream events.Stream
	report events.ValidateReport
}

// readStream loads one source: files are read whole, http(s) URLs are
// tailed as SSE for at most d and their data frames unwrapped back to
// JSONL. live reports whether the source was a URL — a mid-run capture
// that ValidateTail, not Validate, applies to. Unreachable sources are
// usage-class (the check never ran).
func readStream(src string, d time.Duration) (data []byte, live bool, err error) {
	if !strings.HasPrefix(src, "http://") && !strings.HasPrefix(src, "https://") {
		data, err = cli.ReadFile(src)
		return data, false, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src, nil)
	if err != nil {
		return nil, true, cli.Usagef("%s: %v", src, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, true, cli.Usagef("%s: %v", src, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, true, cli.Usagef("%s: HTTP %s", src, resp.Status)
	}
	// Unwrap SSE framing: every `data: {...}` line is one JSONL record.
	// Reading ends at the -for deadline (context cancels the body) or when
	// the serving process exits; both leave a valid prefix.
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			buf.WriteString(line)
			buf.WriteByte('\n')
		}
	}
	return []byte(buf.String()), true, nil
}

// checkFleet verifies the streams describe one coherent run: a single
// experiment name, a single shard count, and no shard index claimed twice.
func checkFleet(shards []shardStream) error {
	byIndex := map[int]string{}
	for _, s := range shards {
		first := shards[0].report
		if s.report.Experiment != first.Experiment {
			return cli.Failf("fleet mismatch: %s is experiment %q but %s is %q",
				shards[0].src, first.Experiment, s.src, s.report.Experiment)
		}
		if s.report.ShardCount != first.ShardCount {
			return cli.Failf("fleet mismatch: %s is %s but %s is %s — streams are from different shardings",
				shards[0].src, shardLabel(first), s.src, shardLabel(s.report))
		}
		if s.report.ShardCount > 0 {
			if prev, dup := byIndex[s.report.ShardIndex]; dup {
				return cli.Failf("fleet mismatch: %s and %s both claim shard %d/%d",
					prev, s.src, s.report.ShardIndex, s.report.ShardCount)
			}
			byIndex[s.report.ShardIndex] = s.src
		}
	}
	return nil
}

// sorted orders streams by shard identity (then experiment/source as a
// stable fallback for unsharded sets) so the rendering is independent of
// argument order.
func sorted(shards []shardStream) []shardStream {
	out := append([]shardStream(nil), shards...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].report, out[j].report
		if a.ShardCount != b.ShardCount {
			return a.ShardCount < b.ShardCount
		}
		if a.ShardIndex != b.ShardIndex {
			return a.ShardIndex < b.ShardIndex
		}
		return out[i].src < out[j].src
	})
	return out
}

// shardLabel renders a report's shard identity ("unsharded" or "shard i/N").
func shardLabel(r events.ValidateReport) string {
	if r.ShardCount == 0 {
		return "unsharded"
	}
	return fmt.Sprintf("shard %d/%d", r.ShardIndex, r.ShardCount)
}

// latestCells returns the per-cell state of a stream's newest snapshot
// (empty when the stream holds no snapshots yet).
func latestCells(s shardStream) []events.CellProgress {
	if n := len(s.stream.Snapshots); n > 0 {
		return s.stream.Snapshots[n-1].Cells
	}
	return nil
}

// latestBW returns the per-bus bandwidth state of a stream's newest
// snapshot (nil when the stream has none, e.g. the run is not profiling).
func latestBW(s shardStream) []events.BusRate {
	if n := len(s.stream.Snapshots); n > 0 {
		return s.stream.Snapshots[n-1].BW
	}
	return nil
}

// renderBW writes the fleet bus-bandwidth line: per-bus cumulative bytes and
// summed byte rates across all shards, in bus-name order. Silent when no
// stream carries bandwidth telemetry (runs without -bw).
func renderBW(w io.Writer, shards []shardStream) {
	busBytes := map[string]uint64{}
	busRate := map[string]float64{}
	var names []string
	for _, s := range shards {
		for _, b := range latestBW(s) {
			if _, seen := busBytes[b.Bus]; !seen {
				names = append(names, b.Bus)
			}
			busBytes[b.Bus] += b.Bytes
			busRate[b.Bus] += b.RatePerSec
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s %d B @ %s", name, busBytes[name], bandwidth.BytesPerSec(busRate[name]))
	}
	fmt.Fprintf(w, "bus bandwidth: %s\n", strings.Join(parts, " · "))
}

// render writes the fleet-wide aggregated view: one row per shard, a totals
// row, then the slowest unfinished cell and the CI-width frontier.
func render(w io.Writer, shards []shardStream) {
	first := shards[0].report
	totalRate, totalCells, totalDone := 0.0, 0, 0
	var fleetEta int64
	var slowest, widest *events.CellProgress
	var slowestSrc, widestSrc string

	fmt.Fprintf(w, "questtop: experiment %q — %d stream(s)\n", first.Experiment, len(shards))
	fmt.Fprintf(w, "%-12s %-24s %8s %6s %6s %12s %10s\n",
		"shard", "source", "snaps", "cells", "done", "trials/s", "eta")
	for _, s := range shards {
		rate := 0.0
		var eta int64
		cells := latestCells(s)
		for i := range cells {
			c := &cells[i]
			rate += c.RatePerSec
			if c.EtaMs > eta {
				eta = c.EtaMs
			}
			if c.Done {
				continue
			}
			if slowest == nil || c.RatePerSec < slowest.RatePerSec {
				slowest, slowestSrc = c, s.src
			}
			if width := c.WilsonHi - c.WilsonLo; widest == nil || width > widest.WilsonHi-widest.WilsonLo {
				widest, widestSrc = c, s.src
			}
		}
		totalRate += rate
		totalCells += s.report.Cells
		totalDone += s.report.DoneCells
		if eta > fleetEta {
			fleetEta = eta
		}
		fmt.Fprintf(w, "%-12s %-24s %8d %6d %6d %12.1f %10s\n",
			shardLabel(s.report), s.src, s.report.Snapshots, s.report.Cells, s.report.DoneCells,
			rate, etaString(eta))
	}
	fmt.Fprintf(w, "%-12s %-24s %8s %6d %6d %12.1f %10s\n",
		"total", "", "", totalCells, totalDone, totalRate, etaString(fleetEta))
	renderBW(w, shards)
	if slowest == nil {
		fmt.Fprintf(w, "all %d cell(s) done\n", totalCells)
		return
	}
	fmt.Fprintf(w, "slowest cell: %q (%s) at %.1f trials/s\n", slowest.Cell, slowestSrc, slowest.RatePerSec)
	fmt.Fprintf(w, "ci frontier:  %q (%s) width %.4f [%.4f, %.4f]\n",
		widest.Cell, widestSrc, widest.WilsonHi-widest.WilsonLo, widest.WilsonLo, widest.WilsonHi)
}

// etaString renders a cell/fleet ETA ("-" when unknown or already done).
func etaString(ms int64) string {
	if ms <= 0 {
		return "-"
	}
	return (time.Duration(ms) * time.Millisecond).Round(100 * time.Millisecond).String()
}

func main() {
	command().Main()
}
