package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quest/internal/events"
)

// writeEventStream fabricates one shard's event stream: a header with the
// given identity and two snapshots over the named cells (the second marks
// every cell half done with a live rate), and returns its path.
func writeEventStream(t *testing.T, dir, name, experiment string, index, count int, cells ...string) string {
	t.Helper()
	var buf bytes.Buffer
	w := events.NewWriter(&buf, nil)
	if err := w.WriteHeader(events.Header{
		Experiment: experiment, GoVersion: "go-test", Host: "host-" + name, PID: 100 + index,
		ShardIndex: index, ShardCount: count, StartMs: 1_000,
	}); err != nil {
		t.Fatal(err)
	}
	for seq, frac := range []int{0, 50} {
		snap := events.Snapshot{Seq: seq + 1, Ms: int64(seq) * 250}
		for _, cell := range cells {
			snap.Cells = append(snap.Cells, events.CellProgress{
				Cell: cell, Completed: frac, Budget: 100, Failures: frac / 10,
				WilsonLo: 0.05, WilsonHi: 0.05 + 0.01*float64(index+1),
				RatePerSec: float64(200 * (index + 1)), EtaMs: 500,
			})
		}
		if err := w.WriteSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, name+".jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestQuesttopExitCodeContract extends the tools/internal/cli exit-code
// contract to this binary: 0 clean, 1 findings (invalid stream, incoherent
// fleet), 2 unusable input (missing file, no arguments, unknown flag).
func TestQuesttopExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	s0 := writeEventStream(t, dir, "shard0", "exit-test", 0, 2, "cell-a")
	s1 := writeEventStream(t, dir, "shard1", "exit-test", 1, 2, "cell-b")
	otherExp := writeEventStream(t, dir, "other-exp", "different", 1, 2, "cell-b")
	otherCount := writeEventStream(t, dir, "other-count", "exit-test", 1, 3, "cell-b")

	badSchema := filepath.Join(dir, "bad-schema.jsonl")
	if err := os.WriteFile(badSchema,
		[]byte(`{"record":"header","schema":"quest-events/99","experiment":"exit-test","start_ms":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.jsonl")
	data, err := os.ReadFile(s0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, append(data, []byte(`{"record":"snapsh`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		argv []string
		want int
	}{
		{"clean check", []string{"-check", s0, s1}, 0},
		{"clean aggregate", []string{s0, s1}, 0},
		{"single stream", []string{"-check", s0}, 0},
		{"torn final line tolerated", []string{"-check", torn, s1}, 0},
		{"wrong schema", []string{"-check", badSchema}, 1},
		{"mismatched experiment", []string{"-check", s0, otherExp}, 1},
		{"mismatched shard count", []string{"-check", s0, otherCount}, 1},
		{"duplicate shard index", []string{"-check", s0, s0}, 1},
		{"missing file", []string{filepath.Join(dir, "nope.jsonl")}, 2},
		{"no arguments", nil, 2},
		{"unknown flag", []string{"-nope", s0}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			if got := command().Execute(tc.argv, &out, &errw); got != tc.want {
				t.Errorf("exit %d, want %d (stderr: %s)", got, tc.want, errw.String())
			}
		})
	}
}

// TestQuesttopArrivalOrderDeterminism pins the acceptance invariant: the
// aggregate view is byte-identical for any ordering of the same shard
// streams, because rows sort by shard identity rather than argv position.
func TestQuesttopArrivalOrderDeterminism(t *testing.T) {
	dir := t.TempDir()
	s0 := writeEventStream(t, dir, "shard0", "order-test", 0, 3, "cell-a", "cell-b")
	s1 := writeEventStream(t, dir, "shard1", "order-test", 1, 3, "cell-c")
	s2 := writeEventStream(t, dir, "shard2", "order-test", 2, 3, "cell-d")

	orders := [][]string{{s0, s1, s2}, {s2, s0, s1}, {s1, s2, s0}}
	var first string
	for i, argv := range orders {
		var out, errw strings.Builder
		if got := command().Execute(argv, &out, &errw); got != 0 {
			t.Fatalf("order %d: exit %d (stderr: %s)", i, got, errw.String())
		}
		if i == 0 {
			first = out.String()
			continue
		}
		if out.String() != first {
			t.Errorf("order %d renders different bytes:\n--- first ---\n%s--- got ---\n%s", i, first, out.String())
		}
	}

	// The fleet totals sum across shards: rates are 200/400/600 trials/s per
	// cell, shard 0 carries two cells, so the total is 2*200+400+600.
	if !strings.Contains(first, "1400.0") {
		t.Errorf("aggregate %q does not sum the fleet rate to 1400.0", first)
	}
	// The CI frontier is the widest unfinished interval: shard 2's cells have
	// width 0.03.
	if !strings.Contains(first, `ci frontier:  "cell-d"`) || !strings.Contains(first, "width 0.0300") {
		t.Errorf("aggregate %q does not surface shard 2's cell as the CI frontier", first)
	}
	// The slowest unfinished cell is one of shard 0's 200 trials/s cells.
	if !strings.Contains(first, `slowest cell: "cell-a"`) {
		t.Errorf("aggregate %q does not surface shard 0's cell-a as slowest", first)
	}
}

// TestQuesttopReadsSSEURL pins the http source path: an /events endpoint
// serving SSE frames is unwrapped back to JSONL and validated like a file.
func TestQuesttopReadsSSEURL(t *testing.T) {
	dir := t.TempDir()
	path := writeEventStream(t, dir, "shard0", "sse-test", 0, 1, "cell-a")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			fmt.Fprintf(w, "data: %s\n\n", line)
		}
	}))
	defer srv.Close()

	var out, errw strings.Builder
	if got := command().Execute([]string{"-check", "-for", "2s", srv.URL}, &out, &errw); got != 0 {
		t.Fatalf("exit %d (stderr: %s)", got, errw.String())
	}
	if !strings.Contains(out.String(), `experiment "sse-test"`) {
		t.Errorf("check output %q does not name the experiment", out.String())
	}

	unreachable := "http://127.0.0.1:1/events"
	var out2, errw2 strings.Builder
	if got := command().Execute([]string{"-check", "-for", "100ms", unreachable}, &out2, &errw2); got != 2 {
		t.Errorf("unreachable URL: exit %d, want 2 (stderr: %s)", got, errw2.String())
	}
}

// TestQuesttopLateSSEJoinValidatesAsTail pins the live-source semantics: a
// subscriber joining mid-run sees the replayed header but snapshots from
// the current seq (with gaps where the broadcaster dropped frames). That
// capture must pass -check as a URL source, while the same bytes read from
// a file fail the stricter gap-free-from-1 invariant.
func TestQuesttopLateSSEJoinValidatesAsTail(t *testing.T) {
	lines := []string{
		`{"record":"header","schema":"quest-events/1","experiment":"late-join","start_ms":1}`,
		`{"record":"snapshot","seq":33,"ms":8000,"runtime":{}}`,
		`{"record":"snapshot","seq":36,"ms":8750,"runtime":{}}`,
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		for _, line := range lines {
			fmt.Fprintf(w, "data: %s\n\n", line)
		}
	}))
	defer srv.Close()

	var out, errw strings.Builder
	if got := command().Execute([]string{"-check", "-for", "2s", srv.URL}, &out, &errw); got != 0 {
		t.Errorf("late-join URL: exit %d, want 0 (stderr: %s)", got, errw.String())
	}

	path := filepath.Join(t.TempDir(), "tail.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out2, errw2 strings.Builder
	if got := command().Execute([]string{"-check", path}, &out2, &errw2); got != 1 {
		t.Errorf("mid-run capture as file: exit %d, want 1 (stderr: %s)", got, errw2.String())
	}
}

// TestQuesttopAllDone pins the fully-converged rendering: when every cell
// is done there is no slowest cell or CI frontier to report.
func TestQuesttopAllDone(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	w := events.NewWriter(&buf, nil)
	if err := w.WriteHeader(events.Header{Experiment: "done-test", StartMs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot(events.Snapshot{Seq: 1, Ms: 10, Cells: []events.CellProgress{
		{Cell: "cell-a", Completed: 100, Budget: 100, Failures: 3, WilsonLo: 0.01, WilsonHi: 0.09, Done: true},
	}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "done.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errw strings.Builder
	if got := command().Execute([]string{path}, &out, &errw); got != 0 {
		t.Fatalf("exit %d (stderr: %s)", got, errw.String())
	}
	if !strings.Contains(out.String(), "all 1 cell(s) done") {
		t.Errorf("output %q does not report completion", out.String())
	}
}

func TestQuesttopRendersFleetBandwidth(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, index int, logicalBytes uint64, rate float64) string {
		var buf bytes.Buffer
		w := events.NewWriter(&buf, nil)
		if err := w.WriteHeader(events.Header{
			Experiment: "bw-test", GoVersion: "go-test", Host: name, PID: 1,
			ShardIndex: index, ShardCount: 2, StartMs: 1_000,
		}); err != nil {
			t.Fatal(err)
		}
		snap := events.Snapshot{Seq: 1, Ms: 0, BW: []events.BusRate{
			{Bus: "logical", Instrs: logicalBytes / 2, Bytes: logicalBytes, RatePerSec: rate},
			{Bus: "sync", Instrs: 1, Bytes: 2, RatePerSec: 1},
		}}
		if err := w.WriteSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".jsonl")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	s0 := write("shard0", 0, 600, 30)
	s1 := write("shard1", 1, 400, 20)
	var out, errw bytes.Buffer
	if code := command().Execute([]string{s0, s1}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	// Buses aggregate across shards: 600+400 logical bytes at 50 B/s.
	if !strings.Contains(out.String(), "logical 1000 B @ 50 B/s") {
		t.Errorf("missing aggregated logical bus line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "sync 4 B @ 2 B/s") {
		t.Errorf("missing aggregated sync bus line:\n%s", out.String())
	}
}

func TestQuesttopNoBandwidthLineWithoutBW(t *testing.T) {
	dir := t.TempDir()
	s0 := writeEventStream(t, dir, "shard0", "nobw", 0, 0, "cell-a")
	var out, errw bytes.Buffer
	if code := command().Execute([]string{s0}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw.String())
	}
	if strings.Contains(out.String(), "bus bandwidth") {
		t.Errorf("bandwidth line rendered for a stream without BW telemetry:\n%s", out.String())
	}
}
