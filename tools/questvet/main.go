// Command questvet runs the repository's custom analyzer suite
// (internal/lint/questvet) over the module: detrange (deterministic map
// iteration), nogate (nil-gated observability on hot paths), seedsrc (no
// ambient entropy in simulations), and schemaver (single-sourced schema
// constants). `make lint` and CI's lint job fail on any diagnostic; the
// final summary line reports how many //quest:allow suppressions are in
// force so the escape hatches stay visible.
//
// Usage:
//
//	questvet [-v] [pattern ...]
//
// With no patterns (or "./..."), the whole module is checked. Other
// patterns select packages whose import path equals the pattern, or falls
// under it when the pattern ends in "/..." — mirroring go-tool package
// patterns for paths inside this module.
package main

import (
	"flag"
	"io"
	"strings"

	"quest/internal/lint/loader"
	"quest/internal/lint/questvet"
	"quest/tools/internal/cli"
)

func main() {
	flags := flag.NewFlagSet("questvet", flag.ContinueOnError)
	verbose := flags.Bool("v", false, "list each suppression with its reason")
	cmd := &cli.Command{
		Name:  "questvet",
		Usage: "[-v] [pattern ...]",
		NArgs: -1,
		Flags: flags,
		Run: func(args []string, stdout io.Writer) error {
			return run(args, *verbose, stdout)
		},
	}
	cmd.Main()
}

func run(patterns []string, verbose bool, stdout io.Writer) error {
	root, err := loader.FindRoot(".")
	if err != nil {
		return cli.Usagef("%v", err)
	}
	prog, err := loader.NewProgram(root)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	pkgs, err := prog.LoadModule()
	if err != nil {
		return cli.Usagef("loading module: %v", err)
	}
	if sel := selectPackages(prog.Module, pkgs, patterns); sel != nil {
		pkgs = sel
	} else {
		return cli.Usagef("patterns %q match no packages", patterns)
	}
	rep, err := questvet.Run(prog, pkgs)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	if n := rep.Write(stdout, verbose); n > 0 {
		return cli.Failf("%d diagnostic(s); fix them or add //quest:allow(<analyzer>) <reason>", n)
	}
	return nil
}

// selectPackages filters pkgs by go-style patterns relative to the module
// ("./...", "quest/internal/mc", "./internal/decoder/..."). Nil means no
// match; an empty pattern list selects everything.
func selectPackages(module string, pkgs []*loader.Package, patterns []string) []*loader.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(path string) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if pat == "..." || pat == "" {
				return true
			}
			if !strings.HasPrefix(pat, module) {
				pat = module + "/" + pat
			}
			if base, ok := strings.CutSuffix(pat, "/..."); ok {
				if path == base || strings.HasPrefix(path, base+"/") {
					return true
				}
				continue
			}
			if path == pat {
				return true
			}
		}
		return false
	}
	var out []*loader.Package
	for _, p := range pkgs {
		if match(p.Path) {
			out = append(out, p)
		}
	}
	return out
}
