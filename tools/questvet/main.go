// Command questvet runs the repository's custom analyzer suite
// (internal/lint/questvet) over the module: detrange (deterministic map
// iteration), nogate (nil-gated observability on hot paths), seedsrc (no
// ambient entropy in simulations), schemaver (single-sourced schema
// constants), hotalloc (interprocedural hot-path allocation budgets from
// questvet-budgets.json), gateflow (interprocedural nil-gating along hot
// call paths), and errsink (no discarded writer errors). `make lint` and
// CI's lint job fail on any unbaselined diagnostic; the final summary line
// reports how many //quest:allow suppressions are in force so the escape
// hatches stay visible.
//
// Usage:
//
//	questvet [-v] [-json] [-sarif FILE] [-baseline FILE] [-write-baseline FILE] [pattern ...]
//
// With no patterns (or "./..."), the whole module is checked. Other
// patterns select packages whose import path equals the pattern, or falls
// under it when the pattern ends in "/..." — mirroring go-tool package
// patterns for paths inside this module. The call graph behind the
// interprocedural analyzers always covers the full module regardless of
// the pattern selection.
//
// With -baseline, findings accepted by the committed baseline do not fail
// the run; only new findings, stale baseline entries, and //quest:allow
// suppression-count drift do. -write-baseline regenerates the file
// (`make questvet-baseline`). Hot-path allocation budgets are read from
// questvet-budgets.json at the module root when present.
//
// Exit code contract (tools/internal/cli): 0 = clean, 1 = findings,
// 2 = could not run (bad usage, unreadable baseline/budget file).
package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"

	"quest/internal/lint/hotalloc"
	"quest/internal/lint/loader"
	"quest/internal/lint/questvet"
	"quest/tools/internal/cli"
)

func main() {
	command().Main()
}

// budgetsName is the committed per-entry-point allocation budget file,
// loaded from the module root when present.
const budgetsName = "questvet-budgets.json"

func command() *cli.Command {
	flags := flag.NewFlagSet("questvet", flag.ContinueOnError)
	verbose := flags.Bool("v", false, "list each suppression with its reason")
	jsonOut := flags.Bool("json", false, "emit the report as quest-lint/1 JSON instead of text")
	sarifPath := flags.String("sarif", "", "also write active findings as SARIF 2.1.0 to `FILE`")
	basePath := flags.String("baseline", "", "diff findings against the committed baseline `FILE`; fail only on drift")
	writeBase := flags.String("write-baseline", "", "regenerate the baseline into `FILE` and exit clean")
	cmd := &cli.Command{
		Name:  "questvet",
		Usage: "[-v] [-json] [-sarif FILE] [-baseline FILE] [-write-baseline FILE] [pattern ...]",
		NArgs: -1,
		Flags: flags,
		Run: func(args []string, stdout io.Writer) error {
			return run(args, options{
				verbose: *verbose, jsonOut: *jsonOut, sarifPath: *sarifPath,
				basePath: *basePath, writeBase: *writeBase,
			}, stdout)
		},
	}
	return cmd
}

type options struct {
	verbose   bool
	jsonOut   bool
	sarifPath string
	basePath  string
	writeBase string
}

func run(patterns []string, opts options, stdout io.Writer) error {
	root, err := loader.FindRoot(".")
	if err != nil {
		return cli.Usagef("%v", err)
	}
	prog, err := loader.NewProgram(root)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	pkgs, err := prog.LoadModule()
	if err != nil {
		return cli.Usagef("loading module: %v", err)
	}
	if sel := selectPackages(prog.Module, pkgs, patterns); sel != nil {
		pkgs = sel
	} else {
		return cli.Usagef("patterns %q match no packages", patterns)
	}
	budgets, err := loadBudgets(root)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	rep, err := questvet.Run(prog, pkgs, questvet.Options{Budgets: budgets})
	if err != nil {
		return cli.Usagef("%v", err)
	}

	if opts.sarifPath != "" {
		f, err := os.Create(opts.sarifPath)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		werr := rep.WriteSARIF(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return cli.Usagef("writing SARIF: %v", werr)
		}
	}
	if opts.writeBase != "" {
		f, err := os.Create(opts.writeBase)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		werr := rep.MakeBaseline().Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return cli.Usagef("writing baseline: %v", werr)
		}
	}

	n := writeReport(rep, opts, stdout)
	if opts.writeBase != "" {
		return nil // regenerating the baseline accepts the current state
	}
	if opts.basePath != "" {
		data, err := cli.ReadFile(opts.basePath)
		if err != nil {
			return err
		}
		base, err := questvet.ParseBaseline(data)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		problems := rep.Diff(base)
		for _, p := range problems {
			io.WriteString(stdout, p+"\n")
		}
		if len(problems) > 0 {
			return cli.Failf("%d problem(s) vs baseline %s", len(problems), opts.basePath)
		}
		return nil
	}
	if n > 0 {
		return cli.Failf("%d diagnostic(s); fix them or add //quest:allow(<analyzer>) <reason>", n)
	}
	return nil
}

func writeReport(rep questvet.Report, opts options, stdout io.Writer) int {
	if opts.jsonOut {
		if err := rep.WriteJSON(stdout); err != nil {
			return len(rep.Active)
		}
		return len(rep.Active)
	}
	return rep.Write(stdout, opts.verbose)
}

// loadBudgets reads questvet-budgets.json from the module root; a missing
// file disables the hotalloc budget audit, a malformed one is a usage
// error.
func loadBudgets(root string) ([]hotalloc.Budget, error) {
	data, err := os.ReadFile(filepath.Join(root, budgetsName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return questvet.ParseBudgets(data)
}

// selectPackages filters pkgs by go-style patterns relative to the module
// ("./...", "quest/internal/mc", "./internal/decoder/..."). Nil means no
// match; an empty pattern list selects everything.
func selectPackages(module string, pkgs []*loader.Package, patterns []string) []*loader.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(path string) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if pat == "..." || pat == "" {
				return true
			}
			if !strings.HasPrefix(pat, module) {
				pat = module + "/" + pat
			}
			if base, ok := strings.CutSuffix(pat, "/..."); ok {
				if path == base || strings.HasPrefix(path, base+"/") {
					return true
				}
				continue
			}
			if path == pat {
				return true
			}
		}
		return false
	}
	var out []*loader.Package
	for _, p := range pkgs {
		if match(p.Path) {
			out = append(out, p)
		}
	}
	return out
}
