package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a file tree under dir from path -> content.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for path, content := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// skeleton returns a minimal module defining every hot root in
// questvet.GraphConfig (specs are suffix-matched), so the graph resolves
// and a clean tree really exits 0.
func skeleton() map[string]string {
	return map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/mc/mc.go": `package mc

func Run() int         { return 0 }
func RunWith() int     { return 0 }
func RunTraced() int   { return 0 }
func RunObserved() int { return 0 }
func RunBatch() int    { return 0 }
`,
		"internal/decoder/decoder.go": `package decoder

type GlobalDecoder struct{}

func (g *GlobalDecoder) Match() {}
`,
		"internal/mce/mce.go": `package mce

type MCE struct{}

func (m *MCE) StepCycle() {}
`,
		"internal/master/master.go": `package master

type Master struct{}

func (m *Master) StepCycle() {}
`,
	}
}

const sinkSrc = `package ledger

type W struct{}

func (w *W) Write() error { return nil }
`

const dropSrc = `package app

import "tmpmod/internal/ledger"

func Use(w *ledger.W) { w.Write() }
`

const dropSrc2 = `package app

import "tmpmod/internal/ledger"

func Use2(w *ledger.W) { w.Write() }
`

func execIn(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	t.Chdir(dir)
	var out, errw bytes.Buffer
	code := command().Execute(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestQuestvetExitCodeContract pins the binary to the tools/internal/cli
// contract: 0 clean (or baseline-covered), 1 findings (or baseline drift),
// 2 could not run.
func TestQuestvetExitCodeContract(t *testing.T) {
	clean := t.TempDir()
	writeTree(t, clean, skeleton())

	dirty := t.TempDir()
	writeTree(t, dirty, skeleton())
	writeTree(t, dirty, map[string]string{
		"internal/ledger/ledger.go": sinkSrc,
		"app/app.go":                dropSrc,
	})

	badBudget := t.TempDir()
	writeTree(t, badBudget, skeleton())
	writeTree(t, badBudget, map[string]string{
		"questvet-budgets.json": `{"schema":"quest-wrong/9","budgets":[]}`,
	})

	cases := []struct {
		name string
		dir  string
		args []string
		want int
	}{
		{"clean tree", clean, nil, 0},
		{"clean tree json", clean, []string{"-json"}, 0},
		{"finding", dirty, nil, 1},
		{"finding in selected package", dirty, []string{"./app/..."}, 1},
		{"finding outside selection", dirty, []string{"./internal/mc"}, 0},
		{"pattern matches nothing", clean, []string{"./nonexistent"}, 2},
		{"missing baseline file", clean, []string{"-baseline", "absent.json"}, 2},
		{"malformed budget file", badBudget, nil, 2},
		{"unknown flag", clean, []string{"-nope"}, 2},
	}
	for _, tc := range cases {
		code, _, errw := execIn(t, tc.dir, tc.args...)
		if code != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, tc.want, errw)
		}
	}
}

// TestQuestvetBaselineFlow pins the diff-aware gate end to end: regenerate
// a baseline over a dirty tree (exit 0), diff clean against it (exit 0),
// introduce a synthetic new finding (exit 1), fix the accepted finding so
// the baseline goes stale (exit 1).
func TestQuestvetBaselineFlow(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, skeleton())
	writeTree(t, dir, map[string]string{
		"internal/ledger/ledger.go": sinkSrc,
		"app/app.go":                dropSrc,
	})

	if code, _, errw := execIn(t, dir, "-write-baseline", "questvet-baseline.json"); code != 0 {
		t.Fatalf("write-baseline: exit %d, stderr: %s", code, errw)
	}
	if code, _, errw := execIn(t, dir, "-baseline", "questvet-baseline.json"); code != 0 {
		t.Fatalf("baseline-covered run: exit %d, stderr: %s", code, errw)
	}

	// A synthetic new finding fails the baseline run.
	writeTree(t, dir, map[string]string{"app/app2.go": dropSrc2})
	code, out, _ := execIn(t, dir, "-baseline", "questvet-baseline.json")
	if code != 1 {
		t.Fatalf("new finding vs baseline: exit %d, want 1", code)
	}
	if !strings.Contains(out, "new finding") {
		t.Errorf("output does not name the new finding:\n%s", out)
	}

	// Fixing the accepted finding leaves the baseline stale, which must
	// also fail until it is regenerated.
	if err := os.Remove(filepath.Join(dir, "app", "app2.go")); err != nil {
		t.Fatal(err)
	}
	writeTree(t, dir, map[string]string{"app/app.go": `package app
`})
	code, out, _ = execIn(t, dir, "-baseline", "questvet-baseline.json")
	if code != 1 || !strings.Contains(out, "stale baseline entry") {
		t.Fatalf("stale baseline: exit %d, output:\n%s", code, out)
	}
}

// TestQuestvetSARIFOutput checks that -sarif writes a parseable artifact
// naming the analyzer and file of each finding.
func TestQuestvetSARIFOutput(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, skeleton())
	writeTree(t, dir, map[string]string{
		"internal/ledger/ledger.go": sinkSrc,
		"app/app.go":                dropSrc,
	})
	sarif := filepath.Join(dir, "questvet.sarif")
	if code, _, errw := execIn(t, dir, "-sarif", sarif); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errw)
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"2.1.0"`, `"errsink"`, "app/app.go"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("SARIF missing %s:\n%s", want, data)
		}
	}
}
