// Command tracecheck validates a Chrome trace-event JSON file as emitted by
// the -trace flag of questsim/questbench: well-formed JSON-object format,
// every event carrying ph/name/pid/tid/ts, non-negative span durations, and a
// non-decreasing ts sequence within every (pid, tid) track. CI's trace-smoke
// step runs it over a freshly generated trace so a schema regression fails
// the build instead of silently producing files Perfetto rejects.
//
// Usage:
//
//	tracecheck [-min-procs N] [-min-events N] trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"quest/internal/tracing"
)

func main() {
	minProcs := flag.Int("min-procs", 0, "fail unless the trace carries at least this many processes (component tracks)")
	minEvents := flag.Int("min-events", 1, "fail unless the trace carries at least this many events")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-procs N] [-min-events N] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	rep, err := tracing.Validate(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	if rep.Procs < *minProcs {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %d process(es), want >= %d\n", path, rep.Procs, *minProcs)
		os.Exit(1)
	}
	if rep.Events < *minEvents {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %d event(s), want >= %d\n", path, rep.Events, *minEvents)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s OK — %d event(s), %d process(es), %d track(s)\n",
		path, rep.Events, rep.Procs, rep.Tracks)
}
