// Command tracecheck validates a Chrome trace-event JSON file as emitted by
// the -trace flag of questsim/questbench: well-formed JSON-object format,
// every event carrying ph/name/pid/tid/ts, non-negative span durations, and a
// non-decreasing ts sequence within every (pid, tid) track. CI's trace-smoke
// step runs it over a freshly generated trace so a schema regression fails
// the build instead of silently producing files Perfetto rejects.
//
// Usage:
//
//	tracecheck [-min-procs N] [-min-events N] trace.json
//
// Exit codes follow the tools/internal/cli contract: 0 valid, 1 validation
// findings, 2 usage or unreadable input.
package main

import (
	"flag"
	"fmt"
	"io"

	"quest/internal/tracing"
	"quest/tools/internal/cli"
)

func command() *cli.Command {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	minProcs := fs.Int("min-procs", 0, "fail unless the trace carries at least this many processes (component tracks)")
	minEvents := fs.Int("min-events", 1, "fail unless the trace carries at least this many events")
	return &cli.Command{
		Name:  "tracecheck",
		Usage: "[-min-procs N] [-min-events N] trace.json",
		NArgs: 1,
		Flags: fs,
		Run: func(args []string, stdout io.Writer) error {
			path := args[0]
			data, err := cli.ReadFile(path)
			if err != nil {
				return err
			}
			rep, err := tracing.Validate(data)
			if err != nil {
				return cli.Failf("%s: %v", path, err)
			}
			if rep.Procs < *minProcs {
				return cli.Failf("%s: %d process(es), want >= %d", path, rep.Procs, *minProcs)
			}
			if rep.Events < *minEvents {
				return cli.Failf("%s: %d event(s), want >= %d", path, rep.Events, *minEvents)
			}
			fmt.Fprintf(stdout, "tracecheck: %s OK — %d event(s), %d process(es), %d track(s)\n",
				path, rep.Events, rep.Procs, rep.Tracks)
			return nil
		},
	}
}

func main() {
	command().Main()
}
